"""Content-addressed boot-artifact cache.

A monitor serving a fleet boots the same few kernel images thousands of
times.  The parse phase of the randomization pipeline (section inventory,
symbol scan, constants contract — :mod:`repro.core.prepared`) depends only
on the image bytes and policy, never the per-boot seed, so the fleet path
memoizes it here and leaves only the shuffle + offset draw + relocation
pass on the per-instance hot path.

Entries are keyed on ``(image digest, policy fingerprint, seed class)``:

* the **image digest** is the SHA-256 of the ELF bytes — content
  addressing, so renaming a kernel or registering the same build twice
  cannot duplicate an entry, and any rebuilt image gets a fresh one;
* the **policy fingerprint** folds in the randomization policy, since a
  policy change invalidates planning assumptions;
* the **seed class** segregates populations whose seeds come from
  different regimes (e.g. per-VM draws vs a shared pool seed) so an
  operator can flush one class without disturbing another.

The cache is bounded LRU with hit/miss/eviction counters, and is safe for
concurrent use by fleet worker threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.inmonitor import RandomizeMode
from repro.core.policy import RandomizationPolicy
from repro.core.prepared import PreparedImage, image_digest, prepare_image
from repro.elf.reader import ElfImage
from repro.telemetry import MetricsRegistry, get_telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.config import VmConfig

#: seed class for fleets where every instance draws its own seed
SEED_CLASS_PER_VM = "per-vm"


def policy_fingerprint(policy: RandomizationPolicy) -> str:
    """Stable digest-key component for a randomization policy."""
    return (
        f"{policy.min_offset:#x}:{policy.max_offset:#x}:"
        f"{policy.align:#x}:{int(policy.randomize_physical)}"
    )


def cache_key_for(cfg: "VmConfig") -> "CacheKey":
    """The cache key a boot of ``cfg`` probes (one shared definition).

    Used by the pipeline's :class:`ArtifactCacheStage` and by the fault
    plan's ``cache-drop`` kind, so both address the same entry.
    """
    return CacheKey(
        image_digest=image_digest(cfg.kernel.elf.data),
        policy=f"{cfg.randomize}:{policy_fingerprint(cfg.policy)}",
        seed_class=cfg.seed_class,
    )


@dataclass(frozen=True)
class CacheKey:
    """(what bytes, under which policy, for which seed population)."""

    image_digest: str
    policy: str
    seed_class: str


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of cache effectiveness."""

    hits: int
    misses: int
    evictions: int
    entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class BootArtifactCache:
    """Bounded LRU over :class:`PreparedImage` parse products."""

    def __init__(
        self, max_entries: int = 64, registry: MetricsRegistry | None = None
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"cache needs at least one entry, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, PreparedImage]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._registry = registry

    def _metrics(self) -> MetricsRegistry:
        # resolved per operation so a scoped telemetry sees cache traffic
        # from caches built before the scope was installed
        return self._registry if self._registry is not None else get_telemetry().registry

    def _record(
        self,
        *,
        hits: int = 0,
        misses: int = 0,
        evictions: int = 0,
        entries: int,
    ) -> None:
        """Publish one operation's metric deltas and occupancy snapshot.

        ``entries`` is the occupancy captured under ``self._lock`` by the
        caller — and every call site still *holds* the lock, so occupancy
        publications are ordered with cache state and concurrent fleet
        workers can never publish a stale (decreasing) gauge value.  The
        registry's own locks are leaf locks; no path leads back here.
        """
        registry = self._metrics()
        if hits:
            registry.counter(
                "repro_cache_hits_total", help="Boot-artifact cache hits"
            ).inc(hits)
        if misses:
            registry.counter(
                "repro_cache_misses_total", help="Boot-artifact cache misses"
            ).inc(misses)
        if evictions:
            registry.counter(
                "repro_cache_evictions_total", help="Boot-artifact cache evictions"
            ).inc(evictions)
        registry.gauge(
            "repro_cache_entries", help="Boot-artifact cache occupancy"
        ).set(entries)

    # -- raw access ----------------------------------------------------------

    def lookup(self, key: CacheKey) -> PreparedImage | None:
        """Probe the cache; counts a hit or miss and refreshes LRU order."""
        with self._lock:
            prepared = self._entries.get(key)
            if prepared is None:
                self._misses += 1
            else:
                self._entries.move_to_end(key)
                self._hits += 1
            self._record(
                hits=1 if prepared is not None else 0,
                misses=1 if prepared is None else 0,
                entries=len(self._entries),
            )
        return prepared

    def insert(self, key: CacheKey, prepared: PreparedImage) -> None:
        """Add (or refresh) an entry, evicting LRU entries past the bound."""
        with self._lock:
            self._entries[key] = prepared
            self._entries.move_to_end(key)
            evicted = 0
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
            self._record(evictions=evicted, entries=len(self._entries))

    def drop(self, key: CacheKey) -> bool:
        """Remove one entry (fault injection's ``cache-drop`` kind).

        Not an eviction: the LRU bound did not force it, so only the
        occupancy gauge moves.  Returns whether the entry existed.
        """
        with self._lock:
            existed = self._entries.pop(key, None) is not None
            self._record(entries=len(self._entries))
        return existed

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._record(entries=0)

    # -- the fleet-facing API --------------------------------------------------

    def get_or_parse(
        self,
        elf: ElfImage,
        mode: RandomizeMode,
        policy: RandomizationPolicy,
        seed_class: str = SEED_CLASS_PER_VM,
    ) -> tuple[PreparedImage, bool]:
        """Serve the parse phase; returns ``(prepared, was_hit)``.

        On a miss the image is parsed cold and inserted; concurrent misses
        on the same key may parse twice, but content addressing makes the
        results interchangeable, so the race is benign.

        The randomize mode folds into the policy component: the symbol scan
        and FGKASLR inventory differ by mode, so each mode owns an entry.
        """
        digest = image_digest(elf.data)
        key = CacheKey(
            image_digest=digest,
            policy=f"{mode}:{policy_fingerprint(policy)}",
            seed_class=seed_class,
        )
        prepared = self.lookup(key)
        if prepared is not None:
            return prepared, True
        fresh = prepare_image(elf, mode, digest=digest)
        self.insert(key, fresh)
        return fresh, False

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
            )
