"""Content-addressed boot-artifact cache.

A monitor serving a fleet boots the same few kernel images thousands of
times.  The parse phase of the randomization pipeline (section inventory,
symbol scan, constants contract — :mod:`repro.core.prepared`) depends only
on the image bytes and policy, never the per-boot seed, so the fleet path
memoizes it here and leaves only the shuffle + offset draw + relocation
pass on the per-instance hot path.

Entries are keyed on ``(image digest, policy fingerprint, seed class)``:

* the **image digest** is the SHA-256 of the ELF bytes — content
  addressing, so renaming a kernel or registering the same build twice
  cannot duplicate an entry, and any rebuilt image gets a fresh one;
* the **policy fingerprint** folds in the randomization policy, since a
  policy change invalidates planning assumptions;
* the **seed class** segregates populations whose seeds come from
  different regimes (e.g. per-VM draws vs a shared pool seed) so an
  operator can flush one class without disturbing another.

The in-memory tier is bounded LRU with hit/miss/eviction counters, safe
for concurrent use by fleet worker threads.  An optional
:class:`DiskCacheTier` persists entries across processes and runs:
memory misses probe the disk before parsing, inserts write through, and
every load is integrity-checked (envelope key + payload SHA-256 + the
prepared image's own content digest) so a corrupt or stale file degrades
to a miss, never a wrong parse.

Attribution: callers that want per-launch accounting pass a
:class:`CacheScope` to ``lookup``/``insert``/``get_or_parse`` — the scope
accumulates only the activity of calls that carried it, so two fleets
sharing one cache each see exactly their own traffic (the old
before/after ``stats()`` delta misattributed interleaved launches).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.core.inmonitor import RandomizeMode
from repro.core.policy import RandomizationPolicy
from repro.core.prepared import PreparedImage, image_digest, prepare_image
from repro.elf.reader import ElfImage
from repro.telemetry import MetricsRegistry, get_telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.config import VmConfig

#: seed class for fleets where every instance draws its own seed
SEED_CLASS_PER_VM = "per-vm"


def policy_fingerprint(policy: RandomizationPolicy) -> str:
    """Stable digest-key component for a randomization policy."""
    return (
        f"{policy.min_offset:#x}:{policy.max_offset:#x}:"
        f"{policy.align:#x}:{int(policy.randomize_physical)}"
    )


def cache_key_for(cfg: "VmConfig") -> "CacheKey":
    """The cache key a boot of ``cfg`` probes (one shared definition).

    Used by the pipeline's :class:`ArtifactCacheStage` and by the fault
    plan's ``cache-drop`` kind, so both address the same entry.
    """
    return CacheKey(
        image_digest=image_digest(cfg.kernel.elf.data),
        policy=f"{cfg.randomize}:{policy_fingerprint(cfg.policy)}",
        seed_class=cfg.seed_class,
    )


@dataclass(frozen=True)
class CacheKey:
    """(what bytes, under which policy, for which seed population)."""

    image_digest: str
    policy: str
    seed_class: str


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of cache effectiveness.

    ``disk_hits`` counts the subset of ``hits`` served by promoting a
    persistent-tier entry into memory; ``parses`` counts cold parses the
    cache could not avoid.  Both default to zero so older snapshots and
    call sites keep working.
    """

    hits: int
    misses: int
    evictions: int
    entries: int
    disk_hits: int = 0
    parses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


#: counter fields a scope tracks (also the worker->parent wire format)
_SCOPE_FIELDS = ("hits", "misses", "evictions", "disk_hits", "parses")


class CacheScope:
    """Per-launch cache attribution: counts only the calls that carry it.

    Thread-safe; fleet workers on many threads note into one scope.  The
    process backend ships each worker's counts back as a plain dict
    (:meth:`counts`) which the parent folds in with :meth:`absorb`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = dict.fromkeys(_SCOPE_FIELDS, 0)

    def note(
        self,
        *,
        hits: int = 0,
        misses: int = 0,
        evictions: int = 0,
        disk_hits: int = 0,
        parses: int = 0,
    ) -> None:
        with self._lock:
            self._counts["hits"] += hits
            self._counts["misses"] += misses
            self._counts["evictions"] += evictions
            self._counts["disk_hits"] += disk_hits
            self._counts["parses"] += parses

    def absorb(self, counts: Mapping[str, int]) -> None:
        """Fold in a worker's counts dict (unknown keys ignored)."""
        self.note(**{f: int(counts.get(f, 0)) for f in _SCOPE_FIELDS})

    def counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def snapshot(self, entries: int = 0) -> CacheStats:
        """This scope's activity as a :class:`CacheStats`.

        ``entries`` is global occupancy — a cache property, not a scope
        one — so the caller supplies it (usually ``cache.stats().entries``).
        """
        counts = self.counts()
        return CacheStats(entries=entries, **counts)


class DiskCacheTier:
    """Persistent content-addressed tier under one directory.

    One file per key, named by the SHA-256 of the key triple.  Each file
    is a pickled envelope ``{format, key, sha256, payload}`` where
    ``payload`` is the pickled :class:`PreparedImage` and ``sha256``
    covers the payload bytes.  Writes go to a unique temp file and
    ``os.replace`` into place, so concurrent writers and crashes leave
    either the old entry or the new one, never a torn file.  Loads verify
    format, key, payload digest, and the prepared image's own content
    digest; any mismatch or unpickling error degrades to ``None``.
    """

    FORMAT = 1
    SUFFIX = ".pkl"

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)

    def _key_tuple(self, key: CacheKey) -> tuple[str, str, str]:
        return (key.image_digest, key.policy, key.seed_class)

    def file_for(self, key: CacheKey) -> Path:
        name = hashlib.sha256(
            "|".join(self._key_tuple(key)).encode("utf-8")
        ).hexdigest()
        return self.path / (name + self.SUFFIX)

    def store(self, key: CacheKey, prepared: PreparedImage) -> None:
        payload = pickle.dumps(prepared, protocol=pickle.HIGHEST_PROTOCOL)
        envelope = pickle.dumps(
            {
                "format": self.FORMAT,
                "key": self._key_tuple(key),
                "sha256": hashlib.sha256(payload).hexdigest(),
                "payload": payload,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        target = self.file_for(key)
        tmp = target.with_name(f"{target.stem}.{os.getpid()}.tmp")
        tmp.write_bytes(envelope)
        os.replace(tmp, target)

    def load(self, key: CacheKey) -> PreparedImage | None:
        target = self.file_for(key)
        try:
            envelope = pickle.loads(target.read_bytes())
            if envelope["format"] != self.FORMAT:
                return None
            if tuple(envelope["key"]) != self._key_tuple(key):
                return None
            payload = envelope["payload"]
            if hashlib.sha256(payload).hexdigest() != envelope["sha256"]:
                return None
            prepared = pickle.loads(payload)
            if prepared.digest != key.image_digest:
                return None
            return prepared
        except FileNotFoundError:
            return None
        except Exception:
            # torn write from a pre-atomic world, truncation, version skew
            return None

    def entries(self) -> list[dict]:
        """Inventory for the ``repro cache`` CLI, sorted by file name."""
        rows = []
        for file in sorted(self.path.glob("*" + self.SUFFIX)):
            row: dict = {"file": file.name, "bytes": file.stat().st_size}
            try:
                envelope = pickle.loads(file.read_bytes())
                digest, policy, seed_class = envelope["key"]
                row.update(
                    image_digest=digest,
                    policy=policy,
                    seed_class=seed_class,
                    sha256=envelope["sha256"],
                    valid=hashlib.sha256(envelope["payload"]).hexdigest()
                    == envelope["sha256"],
                )
            except Exception:
                row["valid"] = False
            rows.append(row)
        return rows

    def evict(self, file_prefix: str) -> int:
        """Remove entries whose file name starts with ``file_prefix``."""
        removed = 0
        for file in sorted(self.path.glob("*" + self.SUFFIX)):
            if file.name.startswith(file_prefix):
                file.unlink(missing_ok=True)
                removed += 1
        return removed

    def clear(self) -> int:
        return self.evict("")


class BootArtifactCache:
    """Bounded LRU over :class:`PreparedImage` parse products.

    With ``disk_path`` set, a :class:`DiskCacheTier` backs the LRU:
    memory misses probe the disk (a disk hit counts as a hit and
    promotes), and inserts write through so entries survive the process.
    """

    def __init__(
        self,
        max_entries: int = 64,
        registry: MetricsRegistry | None = None,
        disk_path: str | os.PathLike | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"cache needs at least one entry, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, PreparedImage]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_hits = 0
        self._parses = 0
        self._registry = registry
        self.disk = DiskCacheTier(disk_path) if disk_path is not None else None

    def _metrics(self) -> MetricsRegistry:
        # resolved per operation so a scoped telemetry sees cache traffic
        # from caches built before the scope was installed
        return self._registry if self._registry is not None else get_telemetry().registry

    def _record(
        self,
        *,
        hits: int = 0,
        misses: int = 0,
        evictions: int = 0,
        entries: int,
    ) -> None:
        """Publish one operation's metric deltas and occupancy snapshot.

        ``entries`` is the occupancy captured under ``self._lock`` by the
        caller — and every call site still *holds* the lock, so occupancy
        publications are ordered with cache state and concurrent fleet
        workers can never publish a stale (decreasing) gauge value.  The
        registry's own locks are leaf locks; no path leads back here.
        """
        registry = self._metrics()
        if hits:
            registry.counter(
                "repro_cache_hits_total", help="Boot-artifact cache hits"
            ).inc(hits)
        if misses:
            registry.counter(
                "repro_cache_misses_total", help="Boot-artifact cache misses"
            ).inc(misses)
        if evictions:
            registry.counter(
                "repro_cache_evictions_total", help="Boot-artifact cache evictions"
            ).inc(evictions)
        registry.gauge(
            "repro_cache_entries", help="Boot-artifact cache occupancy"
        ).set(entries)

    # -- raw access ----------------------------------------------------------

    def lookup(
        self, key: CacheKey, scope: CacheScope | None = None
    ) -> PreparedImage | None:
        """Probe memory then disk; counts a hit or miss, refreshes LRU order.

        A disk-tier hit promotes the entry into memory and counts as a
        hit (plus ``disk_hits``), never a miss — the parse was avoided.
        """
        disk_hit = False
        with self._lock:
            prepared = self._entries.get(key)
            if prepared is not None:
                self._entries.move_to_end(key)
            elif self.disk is not None:
                prepared = self.disk.load(key)
                if prepared is not None:
                    disk_hit = True
                    self._entries[key] = prepared
                    self._entries.move_to_end(key)
            evicted = 0
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
            if prepared is None:
                self._misses += 1
            else:
                self._hits += 1
            self._disk_hits += 1 if disk_hit else 0
            self._evictions += evicted
            self._record(
                hits=1 if prepared is not None else 0,
                misses=1 if prepared is None else 0,
                evictions=evicted,
                entries=len(self._entries),
            )
        if scope is not None:
            scope.note(
                hits=1 if prepared is not None else 0,
                misses=1 if prepared is None else 0,
                evictions=evicted,
                disk_hits=1 if disk_hit else 0,
            )
        return prepared

    def insert(
        self, key: CacheKey, prepared: PreparedImage, scope: CacheScope | None = None
    ) -> None:
        """Add (or refresh) an entry, evicting LRU entries past the bound.

        Write-through: with a disk tier configured the entry also lands
        on disk (outside the lock — the tier's atomic rename makes
        concurrent writers safe).
        """
        with self._lock:
            self._entries[key] = prepared
            self._entries.move_to_end(key)
            evicted = 0
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
            self._record(evictions=evicted, entries=len(self._entries))
        if scope is not None and evicted:
            scope.note(evictions=evicted)
        if self.disk is not None:
            self.disk.store(key, prepared)

    def note_parse(self, scope: CacheScope | None = None) -> None:
        """Count one cold parse the cache could not serve."""
        with self._lock:
            self._parses += 1
        if scope is not None:
            scope.note(parses=1)

    def drop(self, key: CacheKey) -> bool:
        """Remove one entry (fault injection's ``cache-drop`` kind).

        Not an eviction: the LRU bound did not force it, so only the
        occupancy gauge moves.  Drops from memory only — the disk tier is
        managed explicitly via the ``repro cache`` CLI.  Returns whether
        the entry existed in memory.
        """
        with self._lock:
            existed = self._entries.pop(key, None) is not None
            self._record(entries=len(self._entries))
        return existed

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._record(entries=0)

    # -- the fleet-facing API --------------------------------------------------

    def get_or_parse(
        self,
        elf: ElfImage,
        mode: RandomizeMode,
        policy: RandomizationPolicy,
        seed_class: str = SEED_CLASS_PER_VM,
        scope: CacheScope | None = None,
    ) -> tuple[PreparedImage, bool]:
        """Serve the parse phase; returns ``(prepared, was_hit)``.

        On a miss the image is parsed cold and inserted; concurrent misses
        on the same key may parse twice, but content addressing makes the
        results interchangeable, so the race is benign.

        The randomize mode folds into the policy component: the symbol scan
        and FGKASLR inventory differ by mode, so each mode owns an entry.
        """
        digest = image_digest(elf.data)
        key = CacheKey(
            image_digest=digest,
            policy=f"{mode}:{policy_fingerprint(policy)}",
            seed_class=seed_class,
        )
        prepared = self.lookup(key, scope=scope)
        if prepared is not None:
            return prepared, True
        fresh = prepare_image(elf, mode, digest=digest)
        self.note_parse(scope=scope)
        self.insert(key, fresh, scope=scope)
        return fresh, False

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                disk_hits=self._disk_hits,
                parses=self._parses,
            )
