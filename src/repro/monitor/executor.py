"""Boot executors: the fleet's thread and process backends.

The paper's headline number is instantiation *rate*, and the reproduction
models it faithfully: byte-heavy boot stages (ELF parse, segment load,
relocation apply, decompression) hold the GIL, so a thread-backed fleet
serializes exactly the work the paper parallelizes across cores.  This
module gives :class:`~repro.monitor.fleet.FleetManager` two interchangeable
backends behind one interface:

* :class:`ThreadBootExecutor` — one ``ThreadPoolExecutor`` per launch
  (hoisted above the retry waves, so retries reuse workers instead of
  churning pools) running ``vmm.boot`` in-process;
* :class:`ProcessBootExecutor` — a ``ProcessPoolExecutor`` whose workers
  receive the kernel bytes as zero-copy
  :class:`~repro.monitor.sharedmem.SharedBlob` views, boot against their
  own monitor instance, and return compact outcome records (report +
  cache-scope counts + profiler cells) that the parent **replays** into
  its own telemetry/profiler/trace — the same deferred-materialization
  trick request tracing uses, stretched across a process boundary.

Both backends produce byte-identical layouts for the same seeds: every
boot is a pure function of (config, seed, cost model), and the process
worker rebuilds exactly the state the thread path shares.

Engine model: simulated boots charge a virtual clock, so wall-clock
speedup cannot be *measured* here — it is modeled.  :func:`gil_bound_ns`
sums the timeline steps that hold the GIL in a real implementation; the
thread engine's effective makespan is bounded below by that serialized
work, while the process engine schedules it across workers.  The
``BENCH_fleet_mp`` series gates the resulting modeled speedup.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterator

from repro.errors import BootFailure, MonitorError
from repro.monitor.artifact_cache import BootArtifactCache, CacheScope
from repro.monitor.config import BootFormat, VmConfig
from repro.monitor.report import BootReport
from repro.monitor.sharedmem import SharedArtifactStore, SharedBlob
from repro.monitor.vmm import boot_identity
from repro.simtime.trace import BootStep, Timeline
from repro.telemetry import NS_PER_MS, Telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan
    from repro.monitor.vmm import Firecracker
    from repro.simtime.costs import CostModel
    from repro.telemetry.profiler import CostProfiler

__all__ = [
    "BootExecutor",
    "GIL_BOUND_STEPS",
    "ProcessBootExecutor",
    "ThreadBootExecutor",
    "default_workers",
    "gil_bound_ns",
    "make_boot_executor",
]

#: environment override for the multiprocessing start method
MP_START_ENV = "REPRO_MP_START"


def default_workers(cap: int) -> int:
    """Worker-count default: the host's cores, clamped to ``cap``.

    Replaces the old hardcoded 8/4 defaults — a 2-core CI runner gets 2
    workers, a 64-core host still gets ``cap`` (fleet concurrency beyond
    the cap models nothing the experiments need).
    """
    return max(1, min(cap, os.cpu_count() or cap))


#: timeline steps whose real-world implementation executes Python-level
#: byte work under the GIL (parse/copy/relocate/decompress); everything
#: else (blocking I/O waits, kernel-side boot) releases it
GIL_BOUND_STEPS = frozenset(
    {
        BootStep.MONITOR_ELF_PARSE,
        BootStep.MONITOR_SEGMENT_LOAD,
        BootStep.MONITOR_RNG,
        BootStep.MONITOR_SHUFFLE,
        BootStep.MONITOR_RELOCATE,
        BootStep.MONITOR_TABLE_FIXUP,
        BootStep.LOADER_ELF_PARSE,
        BootStep.LOADER_SEGMENT_LOAD,
        BootStep.LOADER_RNG,
        BootStep.LOADER_SHUFFLE,
        BootStep.LOADER_RELOCATE,
        BootStep.LOADER_TABLE_FIXUP,
        BootStep.LOADER_DECOMPRESS,
        BootStep.LOADER_HEAP_ZERO,
        BootStep.LOADER_COPY_KERNEL,
    }
)


def gil_bound_ns(timeline: Timeline) -> int:
    """Nanoseconds of one boot's timeline that serialize on the GIL."""
    totals = timeline.step_totals_ns()
    return sum(ns for step, ns in totals.items() if step in GIL_BOUND_STEPS)


class BootExecutor:
    """Interface the fleet manager drives: one worker pool per launch.

    ``launch`` is a context manager bracketing one fleet launch (all retry
    waves included); the yielded handle exposes ``submit(boot_cfg, index,
    attempt, trace)`` returning a future whose ``result()`` is a
    ``(BootReport, MicroVm)`` pair — or raises the boot's failure — with
    all telemetry/profiler/cache side effects already applied to the
    parent's instruments.
    """

    name = "abstract"

    @contextmanager
    def launch(
        self,
        *,
        vmm: "Firecracker",
        cfg: VmConfig,
        workers: int,
        scope: CacheScope,
        telemetry: Telemetry,
        profiler: "CostProfiler | None",
        warm: bool,
    ) -> Iterator[object]:
        raise NotImplementedError
        yield  # pragma: no cover - unreachable


class ThreadBootExecutor(BootExecutor):
    """In-process backend: shared monitor, one thread pool per launch."""

    name = "thread"

    @contextmanager
    def launch(
        self,
        *,
        vmm: "Firecracker",
        cfg: VmConfig,
        workers: int,
        scope: CacheScope,
        telemetry: Telemetry,
        profiler: "CostProfiler | None",
        warm: bool,
    ) -> Iterator["_ThreadLaunch"]:
        pool = ThreadPoolExecutor(max_workers=workers)
        try:
            yield _ThreadLaunch(pool, vmm, scope)
        finally:
            pool.shutdown(wait=True)


class _ThreadLaunch:
    def __init__(self, pool: ThreadPoolExecutor, vmm, scope: CacheScope) -> None:
        self._pool = pool
        self._vmm = vmm
        self._scope = scope

    def submit(self, boot_cfg: VmConfig, index: int, attempt: int, trace):
        return self._pool.submit(
            self._vmm.boot,
            boot_cfg,
            boot_index=index,
            attempt=attempt,
            trace=trace,
            cache_scope=self._scope,
        )


# -- process backend -----------------------------------------------------------


@dataclass
class _WorkerSpec:
    """Everything a worker process needs to rebuild the boot substrate.

    The kernel bytes travel as :class:`SharedBlob` views (segment name +
    digest, never the payload); ``cfg`` carries a byte-stripped
    :class:`~repro.kernel.image.KernelImage` the worker re-hydrates.
    """

    cfg: VmConfig
    kernel_blob: SharedBlob
    relocs_blob: SharedBlob | None
    monitor: str
    costs: "CostModel"
    fault_plan: "FaultPlan | None"
    want_profiler: bool
    warm: bool
    cache_entries: int
    disk_path: str | None


#: per-worker-process boot substrate, built once by the pool initializer
_WORKER: dict = {}


def _worker_init(spec: _WorkerSpec) -> None:
    from repro.host.storage import HostStorage
    from repro.monitor.vmm import Firecracker, Qemu

    vmlinux = spec.kernel_blob.bytes()
    relocs = spec.relocs_blob.bytes() if spec.relocs_blob is not None else None
    kernel = replace(spec.cfg.kernel, vmlinux=vmlinux, relocs=relocs)
    cfg = replace(spec.cfg, kernel=kernel)
    # worker-local telemetry is a write sink only; the parent replays the
    # report's spans into the real registries, so nothing here is read
    telemetry = Telemetry()
    cache = BootArtifactCache(
        max_entries=spec.cache_entries,
        registry=telemetry.registry,
        disk_path=spec.disk_path,
    )
    monitor_cls = Qemu if spec.monitor == "qemu" else Firecracker
    vmm = monitor_cls(
        HostStorage(),
        costs=spec.costs,
        artifact_cache=cache,
        telemetry=telemetry,
        fault_plan=spec.fault_plan,
    )
    if spec.warm:
        # mirror the parent's warm-up so worker boots see the same cached
        # page-cache/artifact state the thread backend's boots do
        vmm.warm_caches(cfg)
    _WORKER.clear()
    _WORKER.update(cfg=cfg, vmm=vmm, want_profiler=spec.want_profiler)


def _export_profiler(profiler: "CostProfiler | None") -> dict | None:
    if profiler is None:
        return None
    cells = [
        ((key.boot_id, key.stage, key.principal, key.kind), ns, count)
        for key, ns, count in profiler.cells()
    ]
    boot_ns = {boot: profiler.total_ns(boot) for boot in profiler.boot_ids()}
    return {"cells": cells, "boot_ns": boot_ns}


def _worker_boot(index: int, seed: int, attempt: int) -> dict:
    """One boot inside a worker; returns an outcome-union record.

    Never raises: failures come back as data so the parent can replay
    their attribution and rethrow a reconstructed
    :class:`~repro.errors.BootFailure` on its own side of the boundary.
    """
    from repro.telemetry.profiler import CostProfiler

    cfg: VmConfig = _WORKER["cfg"]
    vmm = _WORKER["vmm"]
    scope = CacheScope()
    profiler = CostProfiler() if _WORKER["want_profiler"] else None
    # pool workers run one task at a time, so per-task reassignment is safe
    vmm.profiler = profiler
    boot_cfg = replace(cfg, seed=seed)
    try:
        report = vmm.boot(
            boot_cfg,
            boot_index=index,
            attempt=attempt,
            cache_scope=scope,
        )
    except Exception as exc:
        failure = BootFailure.from_exception(
            exc,
            boot_id=boot_identity(cfg.kernel.name, seed),
            attempt=attempt,
            index=index,
            seed=seed,
        )
        return {
            "ok": False,
            "failure": failure.to_json(),
            "scope": scope.counts(),
            "profiler": _export_profiler(profiler),
        }
    return {
        "ok": True,
        "report": report,
        "scope": scope.counts(),
        "profiler": _export_profiler(profiler),
    }


class _ReplayFuture:
    """Wraps a worker future; ``result()`` replays the outcome record.

    Replay order matches the thread path: profiler cells and cache-scope
    counts first, then per-stage telemetry, the monitor counters, and the
    trace mirror — or the failure counter plus a reconstructed
    :class:`BootFailure` raise.
    """

    def __init__(
        self,
        future,
        *,
        seed: int,
        attempt: int,
        trace,
        scope: CacheScope,
        telemetry: Telemetry,
        profiler: "CostProfiler | None",
    ) -> None:
        self._future = future
        self._seed = seed
        self._attempt = attempt
        self._trace = trace
        self._scope = scope
        self._telemetry = telemetry
        self._profiler = profiler

    def result(self) -> BootReport:
        out = self._future.result()
        self._scope.absorb(out["scope"])
        self._replay_cache_counters(out["scope"])
        if self._profiler is not None and out["profiler"] is not None:
            self._profiler.absorb(
                out["profiler"]["cells"], out["profiler"]["boot_ns"]
            )
        if not out["ok"]:
            failure = out["failure"]
            self._telemetry.registry.counter(
                "repro_boot_failures_total",
                help="Boots aborted by a stage failure",
                stage=failure["stage"],
                kind=failure["kind"],
            ).inc()
            raise BootFailure(
                failure["error"],
                boot_id=failure["boot_id"],
                stage=failure["stage"],
                kind=failure["kind"],
                attempt=failure["attempt"],
                index=failure["index"],
                seed=failure["seed"],
            )
        report: BootReport = out["report"]
        boot_id = boot_identity(report.kernel_name, self._seed)
        for span in report.timeline.spans:
            self._telemetry.stage_span(boot_id, span)
            if self._trace is not None:
                self._trace.span(
                    span.name,
                    "stage",
                    span.start_ns,
                    span.end_ns,
                    attrs={
                        "category": span.category,
                        "principal": span.principal,
                        "attempt": self._attempt,
                    },
                )
        self._telemetry.registry.counter(
            "repro_monitor_boots_total",
            help="Boots completed by a monitor",
            vmm=report.vmm_name,
        ).inc()
        self._telemetry.registry.histogram(
            "repro_boot_duration_ms",
            help="End-to-end simulated boot duration",
            scale=NS_PER_MS,
        ).observe(report.timeline.total_ns)
        return report

    def _replay_cache_counters(self, counts: dict) -> None:
        registry = self._telemetry.registry
        if counts.get("hits"):
            registry.counter(
                "repro_cache_hits_total", help="Boot-artifact cache hits"
            ).inc(counts["hits"])
        if counts.get("misses"):
            registry.counter(
                "repro_cache_misses_total", help="Boot-artifact cache misses"
            ).inc(counts["misses"])
        if counts.get("evictions"):
            registry.counter(
                "repro_cache_evictions_total",
                help="Boot-artifact cache evictions",
            ).inc(counts["evictions"])


class ProcessBootExecutor(BootExecutor):
    """Out-of-process backend: zero-copy artifacts, replayed observability."""

    name = "process"

    @contextmanager
    def launch(
        self,
        *,
        vmm: "Firecracker",
        cfg: VmConfig,
        workers: int,
        scope: CacheScope,
        telemetry: Telemetry,
        profiler: "CostProfiler | None",
        warm: bool,
    ) -> Iterator["_ProcessLaunch"]:
        import multiprocessing

        if cfg.boot_format is not BootFormat.VMLINUX:
            raise MonitorError(
                "the process boot executor only supports vmlinux direct "
                "boots (bzImage containers are not shared-memory backed)"
            )
        start = os.environ.get(MP_START_ENV)
        if start is None:
            methods = multiprocessing.get_all_start_methods()
            start = "fork" if "fork" in methods else "spawn"
        mp_ctx = multiprocessing.get_context(start)
        cache = vmm.artifact_cache
        with SharedArtifactStore() as store:
            spec = _WorkerSpec(
                cfg=replace(
                    cfg,
                    kernel=replace(cfg.kernel, vmlinux=b"", relocs=None),
                    seed=None,
                ),
                kernel_blob=store.put(cfg.kernel.vmlinux),
                relocs_blob=(
                    store.put(cfg.kernel.relocs)
                    if cfg.kernel.relocs is not None
                    else None
                ),
                monitor=vmm.profile.name,
                costs=replace(
                    vmm.costs,
                    decompress_mib_s=dict(vmm.costs.decompress_mib_s),
                    profiler=None,
                ),
                fault_plan=vmm.fault_plan,
                want_profiler=profiler is not None,
                warm=warm,
                cache_entries=cache.max_entries if cache is not None else 64,
                disk_path=(
                    str(cache.disk.path)
                    if cache is not None and cache.disk is not None
                    else None
                ),
            )
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=mp_ctx,
                initializer=_worker_init,
                initargs=(spec,),
            )
            try:
                yield _ProcessLaunch(pool, scope, telemetry, profiler)
            finally:
                pool.shutdown(wait=True)


class _ProcessLaunch:
    def __init__(
        self,
        pool: ProcessPoolExecutor,
        scope: CacheScope,
        telemetry: Telemetry,
        profiler: "CostProfiler | None",
    ) -> None:
        self._pool = pool
        self._scope = scope
        self._telemetry = telemetry
        self._profiler = profiler

    def submit(self, boot_cfg: VmConfig, index: int, attempt: int, trace):
        assert boot_cfg.seed is not None  # fleet draws seeds up front
        future = self._pool.submit(_worker_boot, index, boot_cfg.seed, attempt)
        return _ReplayFuture(
            future,
            seed=boot_cfg.seed,
            attempt=attempt,
            trace=trace,
            scope=self._scope,
            telemetry=self._telemetry,
            profiler=self._profiler,
        )


_EXECUTORS = {
    ThreadBootExecutor.name: ThreadBootExecutor,
    ProcessBootExecutor.name: ProcessBootExecutor,
}


def make_boot_executor(name: str):
    """Resolve an executor backend by name (``thread`` | ``process``)."""
    try:
        return _EXECUTORS[name]()
    except KeyError:
        raise MonitorError(
            f"unknown boot executor {name!r} "
            f"(expected one of: {', '.join(sorted(_EXECUTORS))})"
        ) from None
