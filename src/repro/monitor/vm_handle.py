"""A live handle on a booted microVM.

``Firecracker.boot_vm`` returns one of these alongside the
:class:`~repro.monitor.report.BootReport` so callers can keep interacting
with the guest after init: read guest memory through the page tables,
consult ``/proc/kallsyms`` (triggering the paper's *deferred* kallsyms
fixup on first read — Section 4.3), or hash pages for density analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.layout_result import LayoutResult
from repro.errors import GuestMemoryError, GuestPanic
from repro.kernel import layout as kl
from repro.kernel import tables
from repro.kernel.image import KernelImage
from repro.simtime.clock import SimClock
from repro.simtime.costs import CostModel
from repro.simtime.trace import BootCategory, BootStep
from repro.vm.memory import GuestMemory
from repro.vm.pagetable import PageTableWalker
from repro.vm.portio import PortIoBus


@dataclass
class MicroVm:
    """Post-boot guest state plus the operations the guest exposes."""

    kernel: KernelImage
    memory: GuestMemory
    walker: PageTableWalker
    layout: LayoutResult
    clock: SimClock
    costs: CostModel
    bus: PortIoBus
    #: bytes of early page tables built at boot (lets module loading resume
    #: the table set to map the module region)
    pt_tables_bytes: int = 0
    #: randomized module-region base (chosen on first module load)
    _module_base: int | None = None
    _module_cursor: int = 0
    _module_phys: int = 0
    #: module-base randomization entropy in bits (0 until first load)
    module_entropy_bits: float = 0.0
    loaded_modules: list = None  # populated lazily

    # -- module loading ------------------------------------------------------

    def load_module(self, module, seed: int = 0):
        """insmod: link a :class:`~repro.kernel.modules.ModuleImage` in.

        The first load randomizes the module-region base (modules get their
        own offset, independent of the kernel's — leaking a module pointer
        must not reveal the kernel base).  Imports resolve through the
        guest's kallsyms, which triggers the deferred FGKASLR fixup if the
        table is still stale.
        """
        import random as _random

        from repro.kernel import modules as km
        from repro.vm.pagetable import PageTableBuilder

        if self.loaded_modules is None:
            self.loaded_modules = []
        if self._module_base is None:
            slots = km.MODULE_REGION_SIZE // km.MODULE_ALIGN
            rng = _random.Random(seed)
            self._module_base = km.MODULE_VADDR_BASE + rng.randrange(slots // 2) * (
                km.MODULE_ALIGN
            )
            self._module_cursor = self._module_base
            self._module_phys = kl.align_up(
                self.layout.phys_load + self.layout.mem_bytes, km.MODULE_ALIGN
            )
            import math

            self.module_entropy_bits = math.log2(slots // 2)
            self.clock.charge(
                self.costs.rng_ns(1, in_guest=True),
                category=BootCategory.LINUX_BOOT,
                step=BootStep.KERNEL_MODULE_LOAD,
                label="module-region base draw",
            )

        elf = module.elf
        image_size = module.image_size
        load_vaddr = self._module_cursor
        load_paddr = self._module_phys
        span = kl.align_up(image_size, km.MODULE_ALIGN)
        if load_paddr + span > self.memory.size:
            raise GuestMemoryError(
                f"module {module.name}: no guest memory left at {load_paddr:#x}"
            )
        self._module_cursor += span
        self._module_phys += span

        copied = 0
        for phdr in elf.load_segments():
            data = elf.segment_bytes(phdr)
            self.memory.write(load_paddr + phdr.p_vaddr, data)
            copied += len(data)

        # Resolve imports once through kallsyms (pays the deferred fixup).
        resolved: dict[str, int] = {}
        entries = {e.name: e for e in self.read_kallsyms()}
        kernel_base = kl.LINK_VBASE + self.layout.voffset
        for reloc in module.relocs:
            symbol = reloc.symbol
            if symbol in module.functions:
                target = load_vaddr + module.functions[symbol][0]
            else:
                try:
                    target = kernel_base + entries[symbol].text_offset
                except KeyError:
                    raise GuestPanic(
                        f"module {module.name}: unresolved import {symbol!r}"
                    ) from None
                resolved[symbol] = target
            self.memory.write_u64(
                load_paddr + reloc.image_offset, target + reloc.addend
            )

        builder = PageTableBuilder.resume(
            self.memory, kl.PAGE_TABLE_BASE, self.pt_tables_bytes or 0x1000
        )
        builder.map_2m(load_vaddr, load_paddr, image_size)
        self.pt_tables_bytes = builder._next_free - kl.PAGE_TABLE_BASE

        self.clock.charge(
            self.costs.elf_parse_ns(len(elf.sections))
            + self.costs.reloc_apply_batch_ns(len(module.relocs), in_guest=True)
            + self.costs.memcpy_ns(copied),
            category=BootCategory.LINUX_BOOT,
            step=BootStep.KERNEL_MODULE_LOAD,
            label=f"insmod {module.name}",
        )
        loaded = km.LoadedModule(
            name=module.name,
            load_vaddr=load_vaddr,
            load_paddr=load_paddr,
            image_size=image_size,
            resolved_imports=resolved,
        )
        self.loaded_modules.append(loaded)
        return loaded

    # -- guest-visible reads ------------------------------------------------

    def read_virt(self, vaddr: int, length: int) -> bytes:
        """Read guest-virtual memory through the live page tables."""
        return self.walker.read_virt(vaddr, length)

    def read_cmdline(self) -> str:
        raw = self.memory.read(kl.CMDLINE_ADDR, 4096)
        return raw.split(b"\x00", 1)[0].decode("ascii")

    @property
    def kallsyms_stale(self) -> bool:
        return not self.layout.kallsyms_fixed

    def read_kallsyms(self) -> list[tables.KallsymsEntry]:
        """Model reading ``/proc/kallsyms``.

        Under the paper's lazy-fixup optimization the table is left stale
        at boot; the *first* read performs the deferred rewrite+re-sort and
        pays its cost at guest runtime — "delayed until /proc/kallsyms is
        first examined" (Section 4.3).  Subsequent reads are cheap.
        """
        if not self.layout.kallsyms_fixed:
            section = self.kernel.elf.section(".kallsyms")
            paddr = self.layout.phys_load + (section.vaddr - kl.LINK_VBASE)
            raw = self.memory.read(paddr, section.size)
            entries = tables.decode_kallsyms(raw)
            fixed = [
                tables.KallsymsEntry(
                    text_offset=e.text_offset
                    + self.layout.displacement_for(kl.LINK_VBASE + e.text_offset),
                    name=e.name,
                )
                for e in entries
            ]
            self.memory.write(paddr, tables.encode_kallsyms(fixed))
            self.clock.charge(
                self.costs.kallsyms_fixup_ns(len(entries)),
                category=BootCategory.LINUX_BOOT,
                step=BootStep.KERNEL_KALLSYMS_FIXUP,
                label=f"deferred kallsyms fixup ({len(entries)} symbols)",
            )
            self.layout.kallsyms_fixed = True
        section = self.kernel.elf.section(".kallsyms")
        paddr = self.layout.phys_load + (section.vaddr - kl.LINK_VBASE)
        return tables.decode_kallsyms(self.memory.read(paddr, section.size))

    def kallsyms_lookup(self, name: str) -> int:
        """Resolve a symbol to its *runtime* virtual address via kallsyms."""
        for entry in self.read_kallsyms():
            if entry.name == name:
                return kl.LINK_VBASE + self.layout.voffset + entry.text_offset
        raise KeyError(f"symbol {name!r} not in kallsyms")

    # -- host-side introspection ------------------------------------------------

    @property
    def resident_mib(self) -> float:
        return self.memory.resident_bytes / (1024 * 1024)
