"""Firecracker-style configuration API.

Real Firecracker is driven over a REST socket: PUT ``/machine-config``,
PUT ``/boot-source``, then ``InstanceStart``.  Figure 8 of the paper shows
in-monitor KASLR surfacing as one extra boot-source argument — the
relocation entries.  This facade reproduces that operator-facing contract
(including Firecracker-flavoured validation errors) on top of
:class:`~repro.monitor.vmm.Firecracker`, plus the snapshot endpoints the
zygote flows use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bzimage.format import BzImage
from repro.core.inmonitor import RandomizeMode
from repro.errors import MonitorError
from repro.kernel.image import KernelImage
from repro.monitor.config import BootFormat, VmConfig
from repro.monitor.report import BootReport
from repro.monitor.vm_handle import MicroVm
from repro.monitor.vmm import Firecracker
from repro.snapshot.checkpoint import Snapshot, SnapshotManager


@dataclass
class MachineConfig:
    """PUT /machine-config payload."""

    vcpu_count: int = 1
    mem_size_mib: int = 256


@dataclass
class BootSource:
    """PUT /boot-source payload.

    ``relocs`` is the in-monitor KASLR extension: "an extra configuration
    option at runtime" (Section 4.3).  ``randomize`` selects none/kaslr/
    fgkaslr; requesting randomization without relocation info fails at
    instance start, like the prototype would.
    """

    kernel_image: KernelImage
    boot_args: str | None = None
    relocs: bool = False
    randomize: str = "none"
    bzimage: BzImage | None = None
    initrd: bytes | None = None


@dataclass
class FirecrackerApi:
    """The PUT-then-start machine lifecycle."""

    vmm: Firecracker
    _machine: MachineConfig = field(default_factory=MachineConfig)
    _boot_source: BootSource | None = None
    _started: bool = False
    _vm: MicroVm | None = None
    _report: BootReport | None = None

    # -- configuration endpoints ------------------------------------------------

    def put_machine_config(self, vcpu_count: int = 1, mem_size_mib: int = 256) -> None:
        if self._started:
            raise MonitorError(
                "The requested operation is not supported after starting "
                "the microVM."
            )
        self._machine = MachineConfig(vcpu_count=vcpu_count, mem_size_mib=mem_size_mib)

    def put_boot_source(self, source: BootSource) -> None:
        if self._started:
            raise MonitorError(
                "The requested operation is not supported after starting "
                "the microVM."
            )
        try:
            RandomizeMode(source.randomize)
        except ValueError:
            raise MonitorError(
                f"unknown randomization mode {source.randomize!r}"
            ) from None
        self._boot_source = source

    # -- lifecycle -------------------------------------------------------------------

    def instance_start(self) -> BootReport:
        if self._started:
            raise MonitorError("The microVM is already running.")
        if self._boot_source is None:
            raise MonitorError(
                "Cannot start microvm that was not configured: missing "
                "boot-source."
            )
        source = self._boot_source
        mode = RandomizeMode(source.randomize)
        if mode is not RandomizeMode.NONE and not source.relocs:
            raise MonitorError(
                "boot-source requests randomization but supplies no "
                "relocation entries (see Figure 8: pass vmlinux.relocs)"
            )
        cfg = VmConfig(
            kernel=source.kernel_image,
            boot_format=BootFormat.BZIMAGE if source.bzimage else BootFormat.VMLINUX,
            bzimage=source.bzimage,
            randomize=mode,
            mem_mib=self._machine.mem_size_mib,
            vcpus=self._machine.vcpu_count,
            cmdline=source.boot_args,
            initrd=source.initrd,
        )
        self.vmm.warm_caches(cfg)
        report, vm = self.vmm.boot_vm(cfg)
        self._report, self._vm, self._started = report, vm, True
        return report

    def describe_instance(self) -> dict:
        state = "Running" if self._started else "Not started"
        info = {"state": state, "vmm_version": "repro-1.0.0"}
        if self._report is not None:
            info.update(
                {
                    "kernel": self._report.kernel_name,
                    "boot_time_ms": round(self._report.total_ms, 3),
                    "randomized": self._report.layout.randomized,
                }
            )
        return info

    @property
    def vm(self) -> MicroVm:
        if self._vm is None:
            raise MonitorError("The microVM has not been started.")
        return self._vm

    # -- snapshot endpoints -------------------------------------------------------------

    def create_snapshot(self) -> Snapshot:
        if self._vm is None:
            raise MonitorError("Cannot snapshot a microVM that is not running.")
        return SnapshotManager(self.vmm.costs).capture(self._vm)

    def load_snapshot(self, snapshot: Snapshot, rebase_seed: int | None = None):
        """Restore into a *new* API instance (Firecracker restores fresh VMs)."""
        if self._started:
            raise MonitorError(
                "Cannot load a snapshot into a running microVM."
            )
        manager = SnapshotManager(self.vmm.costs)
        if rebase_seed is not None:
            vm, latency = manager.restore_rebased(snapshot, seed=rebase_seed)
        else:
            vm, latency = manager.restore(snapshot)
        self._vm, self._started = vm, True
        return vm, latency
