"""The microVM monitors: Firecracker (and a QEMU profile).

``Firecracker.boot`` runs one complete simulated boot through the staged
boot pipeline (:mod:`repro.pipeline`):

* monitor startup (process + KVM init),
* kernel file read through the host page-cache model,
* direct boot — with optional in-monitor (FG)KASLR, the parse phase
  served by the :class:`BootArtifactCache` wrapper stage when present —
  or bzImage boot via the in-guest bootstrap loader stages,
* boot_params/cmdline/page-table/vCPU setup per the chosen boot protocol,
* guest entry, then the guest's own boot (memory init + subsystem init),
* the post-boot verification oracle (a failed relocation here is the
  simulation's kernel panic).

Every stage charges a deterministic simulated clock and emits a begin/end
span; the returned :class:`~repro.monitor.report.BootReport` carries both
the paper's four-way category breakdown and the per-stage spans.

Monitor variation is stage *substitution*, not subclass override: a
:class:`MonitorProfile` supplies the constants (and constraints) the
pipeline builder and stages consume, so :class:`Qemu` and the unikernel
monitor are profiles over the same pipeline machinery.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, replace

from typing import TYPE_CHECKING

from repro.core.inmonitor import RandomizeMode
from repro.errors import BootFailure, InjectedFault, MonitorError, failure_kind
from repro.host.entropy import HostEntropyPool
from repro.host.storage import HostStorage
from repro.monitor.artifact_cache import BootArtifactCache
from repro.monitor.config import BootFormat, VmConfig
from repro.monitor.report import BootReport
from repro.monitor.vm_handle import MicroVm
from repro.pipeline import BootPipeline, StageContext, build_boot_pipeline
from repro.simtime.clock import SimClock
from repro.simtime.costs import CostModel, JitterModel
from repro.telemetry import NS_PER_MS, Telemetry, get_telemetry
from repro.telemetry.profiler import CostProfiler
from repro.vm.portio import PortIoBus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan


def boot_identity(kernel_name: str, seed: int) -> str:
    """The boot id telemetry events carry: ``<kernel>:<seed hex>``.

    Deterministic in (kernel, seed), so seeded fleet runs produce the
    same ids — and therefore the same exported traces — every time.
    """
    return f"{kernel_name}:{seed:016x}"


@dataclass(frozen=True)
class MonitorProfile:
    """Monitor-implementation constants (Section 2.2: these vary by VMM)."""

    name: str
    #: overrides CostModel.vmm_startup_ns when set
    startup_ns: float | None = None
    #: overrides CostModel.vmm_guest_entry_ns when set
    guest_entry_ns: float | None = None
    #: monitors without a bootstrap loader can only compose direct boots
    direct_only: bool = False


FIRECRACKER_PROFILE = MonitorProfile(name="firecracker")
#: QEMU brings up a much larger device model before the guest runs
QEMU_PROFILE = MonitorProfile(
    name="qemu", startup_ns=80_000_000.0, guest_entry_ns=250_000.0
)


class Firecracker:
    """A Firecracker-like microVM monitor over the simulated substrate.

    One instance may serve concurrent :meth:`boot_vm` calls (the fleet
    path): every boot works on a per-boot cost-model clone and its own
    clock/memory, and the only shared mutable pieces — host storage's page
    cache, the entropy pool, and the optional boot-artifact cache — are
    safe to share.
    """

    profile: MonitorProfile = FIRECRACKER_PROFILE

    def __init__(
        self,
        storage: HostStorage,
        costs: CostModel | None = None,
        entropy: HostEntropyPool | None = None,
        artifact_cache: BootArtifactCache | None = None,
        telemetry: Telemetry | None = None,
        profiler: "CostProfiler | None" = None,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        self.storage = storage
        self.costs = costs if costs is not None else CostModel()
        self.telemetry = telemetry
        self.profiler = profiler
        self.fault_plan = fault_plan
        if entropy is None:
            registry = telemetry.registry if telemetry is not None else None
            entropy = HostEntropyPool(registry=registry)
        self.entropy = entropy
        self.artifact_cache = artifact_cache

    # -- public API ------------------------------------------------------------

    def register_kernel(self, cfg: VmConfig) -> None:
        """Place the config's kernel files on host storage (uncached)."""
        name = cfg.kernel_file_name()
        if not self.storage.exists(name):
            if cfg.boot_format is BootFormat.BZIMAGE:
                assert cfg.bzimage is not None  # validated by caller
                self.storage.put(name, cfg.bzimage.data)
            else:
                self.storage.put(name, cfg.kernel.vmlinux)
        relocs_needed = (
            cfg.boot_format is BootFormat.VMLINUX
            and cfg.randomize is not RandomizeMode.NONE
        )
        if relocs_needed and not self.storage.exists(cfg.relocs_file_name()):
            if cfg.kernel.relocs is None:
                raise MonitorError(
                    f"{cfg.kernel.name} has no relocation info to register"
                )
            self.storage.put(cfg.relocs_file_name(), cfg.kernel.relocs)

    def warm_caches(self, cfg: VmConfig) -> None:
        """Model the 5 warm-up boots the paper runs before measuring.

        Warms the host page cache, and — when this monitor carries a
        :class:`BootArtifactCache` — primes the parse entry the caching
        stage will probe, so the first measured boot is already a hit.
        """
        self.register_kernel(cfg)
        self.storage.warm(cfg.kernel_file_name())
        if (
            cfg.boot_format is BootFormat.VMLINUX
            and cfg.randomize is not RandomizeMode.NONE
        ):
            self.storage.warm(cfg.relocs_file_name())
        if (
            self.artifact_cache is not None
            and cfg.boot_format is BootFormat.VMLINUX
        ):
            self.artifact_cache.get_or_parse(
                cfg.kernel.elf,
                cfg.randomize,
                cfg.policy,
                seed_class=cfg.seed_class,
            )

    def boot(
        self,
        cfg: VmConfig,
        *,
        boot_index: int = 0,
        attempt: int = 0,
        trace=None,
        cache_scope=None,
    ) -> BootReport:
        """Run one boot start-to-init; raises on any contract violation.

        ``boot_index``/``attempt`` identify the boot to an installed
        fault plan (fleet index targeting, retry redraws); both default
        to 0 for standalone boots.  ``trace`` is an optional
        :class:`~repro.telemetry.tracing.TraceContext` the pipeline
        mirrors its stage spans onto; ``cache_scope`` an optional
        :class:`~repro.monitor.artifact_cache.CacheScope` the caching
        stage attributes its activity to.
        """
        report, _vm = self.boot_vm(
            cfg,
            boot_index=boot_index,
            attempt=attempt,
            trace=trace,
            cache_scope=cache_scope,
        )
        return report

    def build_pipeline(self, cfg: VmConfig) -> BootPipeline:
        """The stage composition this monitor uses for ``cfg``."""
        return build_boot_pipeline(cfg, direct_only=self.profile.direct_only)

    def boot_vm(
        self,
        cfg: VmConfig,
        *,
        boot_index: int = 0,
        attempt: int = 0,
        trace=None,
        cache_scope=None,
    ) -> tuple[BootReport, "MicroVm"]:
        """Like :meth:`boot`, but also returns a live guest handle."""
        cfg.validate()
        self.register_kernel(cfg)
        if cfg.drop_caches:
            self.storage.drop_caches()
        cached = self.storage.is_cached(cfg.kernel_file_name())

        seed = cfg.seed if cfg.seed is not None else self.entropy.draw_u64()
        # Distinct per-boot measurement noise, deterministic in the seed.
        # A per-boot clone keeps concurrent boots off one shared jitter RNG.
        costs = self._boot_costs(cfg, seed)

        telemetry = self.telemetry if self.telemetry is not None else get_telemetry()
        clock = SimClock()
        clock.profiler = self.profiler
        ctx = StageContext(
            clock=clock,
            costs=costs,
            rng=random.Random(seed),
            cfg=cfg,
            storage=self.storage,
            entropy=self.entropy,
            artifact_cache=self.artifact_cache,
            cache_scope=cache_scope,
            bus=PortIoBus(clock),
            vmm_name=self.profile.name,
            startup_override_ns=self.profile.startup_ns,
            guest_entry_override_ns=self.profile.guest_entry_ns,
            telemetry=telemetry,
            boot_id=boot_identity(cfg.kernel.name, seed),
            profiler=self.profiler,
            fault_plan=self.fault_plan,
            boot_index=boot_index,
            attempt=attempt,
            trace=trace,
        )
        try:
            self.build_pipeline(cfg).run(ctx)
        except Exception as exc:
            self._count_failure(telemetry, exc)
            if isinstance(exc, InjectedFault):
                raise BootFailure(
                    str(exc),
                    boot_id=ctx.boot_id,
                    stage=exc.boot_stage,
                    kind=exc.fault_kind,
                    attempt=attempt,
                    index=boot_index,
                    seed=seed,
                ) from exc
            raise

        telemetry.registry.counter(
            "repro_monitor_boots_total",
            help="Boots completed by a monitor",
            vmm=self.profile.name,
        ).inc()
        telemetry.registry.histogram(
            "repro_boot_duration_ms",
            help="End-to-end simulated boot duration",
            scale=NS_PER_MS,
        ).observe(clock.now_ns)

        codec = (
            cfg.bzimage.header.codec
            if cfg.boot_format is BootFormat.BZIMAGE and cfg.bzimage
            else None
        )
        report = BootReport(
            vmm_name=self.profile.name,
            kernel_name=cfg.kernel.name,
            boot_format=str(cfg.boot_format),
            mode=cfg.randomize,
            codec=codec,
            total_ms=clock.elapsed_ms(),
            timeline=clock.timeline,
            layout=ctx.layout,
            verification=ctx.verification,
            milestones=ctx.bus.milestones(),
            mem_mib=cfg.mem_mib,
            cached=cached,
            scale=cfg.kernel.scale,
        )
        vm = MicroVm(
            kernel=cfg.kernel,
            memory=ctx.memory,
            walker=ctx.walker,
            layout=ctx.layout,
            clock=clock,
            costs=costs,
            bus=ctx.bus,
            pt_tables_bytes=ctx.pt_tables_bytes,
        )
        return report, vm

    # -- per-boot plumbing -----------------------------------------------------

    @staticmethod
    def _count_failure(telemetry: Telemetry, exc: Exception) -> None:
        """One ``repro_boot_failures_total{stage,kind}`` tick per abort.

        Reads the attribution the pipeline stamped onto the exception;
        organic failures classify by type, injected faults by their kind.
        """
        telemetry.registry.counter(
            "repro_boot_failures_total",
            help="Boots aborted by a stage failure",
            stage=getattr(exc, "boot_stage", None) or "unknown",
            kind=failure_kind(exc),
        ).inc()

    def _boot_costs(self, cfg, seed) -> CostModel:
        """A per-boot :class:`CostModel` with its own seeded jitter stream.

        Cloning (rather than reseeding the shared model) is what makes
        concurrent ``boot_vm`` calls deterministic: each boot draws noise
        from a private RNG keyed exactly as the serial path always was.
        """
        jseed = zlib.crc32(f"{self.profile.name}:{cfg.kernel.name}:{seed}".encode())
        return replace(
            self.costs,
            jitter=JitterModel(sigma=self.costs.jitter.sigma, seed=jseed),
            decompress_mib_s=dict(self.costs.decompress_mib_s),
            profiler=self.profiler,
        )


class Qemu(Firecracker):
    """The same machinery under QEMU-like monitor constants (Section 2.2)."""

    profile = QEMU_PROFILE
