"""The microVM monitors: Firecracker (and a QEMU profile).

``Firecracker.boot`` runs one complete simulated boot:

* monitor startup (process + KVM init),
* kernel file read through the host page-cache model,
* direct boot — with optional in-monitor (FG)KASLR — or bzImage boot via
  the in-guest bootstrap loader,
* boot_params/cmdline/page-table/vCPU setup per the chosen boot protocol,
* guest entry, then the guest's own boot (memory init + subsystem init),
* the post-boot verification oracle (a failed relocation here is the
  simulation's kernel panic).

Every step charges a deterministic simulated clock; the returned
:class:`~repro.monitor.report.BootReport` carries the same four-way time
breakdown the paper's figures use.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, replace

from repro.bootstrap.loader import BootstrapLoader
from repro.core.context import RandoContext
from repro.core.inmonitor import InMonitorRandomizer, RandomizeMode
from repro.elf.notes import find_pvh_entry, parse_notes
from repro.errors import MonitorError
from repro.host.entropy import HostEntropyPool
from repro.host.storage import HostStorage
from repro.kernel import layout as kl
from repro.kernel.manifest import FUNCTION_PROLOGUE
from repro.kernel.verify import verify_guest_kernel
from repro.monitor.addrspace import build_kernel_address_space
from repro.monitor.artifact_cache import BootArtifactCache
from repro.monitor.config import BootFormat, BootProtocol, VmConfig
from repro.monitor.report import BootReport
from repro.monitor.vm_handle import MicroVm
from repro.simtime.clock import SimClock
from repro.simtime.costs import CostModel, JitterModel
from repro.simtime.trace import BootCategory, BootStep
from repro.vm.bootparams import BP_FLAG_IN_MONITOR_KASLR, BootParams
from repro.vm.cpu import VcpuState
from repro.vm.memory import GuestMemory
from repro.vm.pagetable import PageTableWalker
from repro.vm.portio import (
    MILESTONE_INIT_RUN,
    MILESTONE_KERNEL_ENTRY,
    TRACE_PORT,
    PortIoBus,
)


@dataclass(frozen=True)
class MonitorProfile:
    """Monitor-implementation constants (Section 2.2: these vary by VMM)."""

    name: str
    #: overrides CostModel.vmm_startup_ns when set
    startup_ns: float | None = None
    #: overrides CostModel.vmm_guest_entry_ns when set
    guest_entry_ns: float | None = None


FIRECRACKER_PROFILE = MonitorProfile(name="firecracker")
#: QEMU brings up a much larger device model before the guest runs
QEMU_PROFILE = MonitorProfile(
    name="qemu", startup_ns=80_000_000.0, guest_entry_ns=250_000.0
)


class Firecracker:
    """A Firecracker-like microVM monitor over the simulated substrate.

    One instance may serve concurrent :meth:`boot_vm` calls (the fleet
    path): every boot works on a per-boot cost-model clone and its own
    clock/memory, and the only shared mutable pieces — host storage's page
    cache, the entropy pool, and the optional boot-artifact cache — are
    safe to share.
    """

    profile: MonitorProfile = FIRECRACKER_PROFILE

    def __init__(
        self,
        storage: HostStorage,
        costs: CostModel | None = None,
        entropy: HostEntropyPool | None = None,
        artifact_cache: BootArtifactCache | None = None,
    ) -> None:
        self.storage = storage
        self.costs = costs if costs is not None else CostModel()
        self.entropy = entropy if entropy is not None else HostEntropyPool()
        self.artifact_cache = artifact_cache

    # -- public API ------------------------------------------------------------

    def register_kernel(self, cfg: VmConfig) -> None:
        """Place the config's kernel files on host storage (uncached)."""
        name = cfg.kernel_file_name()
        if not self.storage.exists(name):
            if cfg.boot_format is BootFormat.BZIMAGE:
                assert cfg.bzimage is not None  # validated by caller
                self.storage.put(name, cfg.bzimage.data)
            else:
                self.storage.put(name, cfg.kernel.vmlinux)
        relocs_needed = (
            cfg.boot_format is BootFormat.VMLINUX
            and cfg.randomize is not RandomizeMode.NONE
        )
        if relocs_needed and not self.storage.exists(cfg.relocs_file_name()):
            if cfg.kernel.relocs is None:
                raise MonitorError(
                    f"{cfg.kernel.name} has no relocation info to register"
                )
            self.storage.put(cfg.relocs_file_name(), cfg.kernel.relocs)

    def warm_caches(self, cfg: VmConfig) -> None:
        """Model the 5 warm-up boots the paper runs before measuring."""
        self.register_kernel(cfg)
        self.storage.warm(cfg.kernel_file_name())
        if (
            cfg.boot_format is BootFormat.VMLINUX
            and cfg.randomize is not RandomizeMode.NONE
        ):
            self.storage.warm(cfg.relocs_file_name())

    def boot(self, cfg: VmConfig) -> BootReport:
        """Run one boot start-to-init; raises on any contract violation."""
        report, _vm = self.boot_vm(cfg)
        return report

    def boot_vm(self, cfg: VmConfig) -> tuple[BootReport, "MicroVm"]:
        """Like :meth:`boot`, but also returns a live guest handle."""
        cfg.validate()
        self.register_kernel(cfg)
        if cfg.drop_caches:
            self.storage.drop_caches()
        cached = self.storage.is_cached(cfg.kernel_file_name())

        seed = cfg.seed if cfg.seed is not None else self.entropy.draw_u64()
        rng = random.Random(seed)
        # Distinct per-boot measurement noise, deterministic in the seed.
        # A per-boot clone keeps concurrent boots off one shared jitter RNG.
        costs = self._boot_costs(cfg, seed)

        clock = SimClock()
        bus = PortIoBus(clock)
        clock.charge(
            self._startup_ns(costs),
            category=BootCategory.IN_MONITOR,
            step=BootStep.MONITOR_STARTUP,
            label=f"{self.profile.name} startup",
        )
        memory = GuestMemory(cfg.mem_bytes)

        if cfg.boot_format is BootFormat.VMLINUX:
            layout, loaded = self._direct_boot(cfg, memory, clock, rng, costs)
        else:
            layout, loaded = self._bzimage_boot(cfg, memory, clock, rng, bus, costs)

        walker, pt_bytes = self._finish_setup(
            cfg, memory, clock, layout, loaded.mem_bytes, costs
        )
        self._enter_guest(cfg, clock, bus, walker, layout, costs)
        verification = self._run_guest(cfg, memory, clock, bus, walker, layout, costs)

        codec = (
            cfg.bzimage.header.codec
            if cfg.boot_format is BootFormat.BZIMAGE and cfg.bzimage
            else None
        )
        report = BootReport(
            vmm_name=self.profile.name,
            kernel_name=cfg.kernel.name,
            boot_format=str(cfg.boot_format),
            mode=cfg.randomize,
            codec=codec,
            total_ms=clock.elapsed_ms(),
            timeline=clock.timeline,
            layout=layout,
            verification=verification,
            milestones=bus.milestones(),
            mem_mib=cfg.mem_mib,
            cached=cached,
            scale=cfg.kernel.scale,
        )
        vm = MicroVm(
            kernel=cfg.kernel,
            memory=memory,
            walker=walker,
            layout=layout,
            clock=clock,
            costs=costs,
            bus=bus,
            pt_tables_bytes=pt_bytes,
        )
        return report, vm

    # -- boot paths --------------------------------------------------------------

    def _boot_costs(self, cfg, seed) -> CostModel:
        """A per-boot :class:`CostModel` with its own seeded jitter stream.

        Cloning (rather than reseeding the shared model) is what makes
        concurrent ``boot_vm`` calls deterministic: each boot draws noise
        from a private RNG keyed exactly as the serial path always was.
        """
        jseed = zlib.crc32(f"{self.profile.name}:{cfg.kernel.name}:{seed}".encode())
        return replace(
            self.costs,
            jitter=JitterModel(sigma=self.costs.jitter.sigma, seed=jseed),
            decompress_mib_s=dict(self.costs.decompress_mib_s),
        )

    def _direct_boot(self, cfg, memory, clock, rng, costs):
        data = self.storage.read(cfg.kernel_file_name(), clock, costs)
        relocs = None
        if cfg.randomize is not RandomizeMode.NONE:
            self.storage.read(cfg.relocs_file_name(), clock, costs)
            relocs = cfg.kernel.reloc_table
        elf = cfg.kernel.elf
        if data != cfg.kernel.vmlinux:
            raise MonitorError("host storage returned a different kernel image")
        randomizer = InMonitorRandomizer(
            policy=cfg.policy,
            lazy_kallsyms=cfg.lazy_kallsyms,
            update_orc=cfg.update_orc,
        )
        ctx = RandoContext.monitor(clock, costs, rng)
        if self.artifact_cache is not None:
            prepared, hit = self.artifact_cache.get_or_parse(
                elf, cfg.randomize, cfg.policy, seed_class=cfg.seed_class
            )
            return randomizer.run_prepared(
                prepared,
                relocs,
                memory,
                ctx,
                guest_ram_bytes=cfg.mem_bytes,
                scale=cfg.kernel.scale,
                from_cache=hit,
            )
        return randomizer.run(
            elf,
            relocs,
            memory,
            ctx,
            cfg.randomize,
            guest_ram_bytes=cfg.mem_bytes,
            scale=cfg.kernel.scale,
        )

    def _bzimage_boot(self, cfg, memory, clock, rng, bus, costs):
        assert cfg.bzimage is not None
        data = self.storage.read(cfg.kernel_file_name(), clock, costs)
        if data != cfg.bzimage.data:
            raise MonitorError("host storage returned a different bzImage")
        end = kl.BZIMAGE_LOAD_ADDR + len(data)
        if end > kl.PHYS_LOAD_ADDR:
            raise MonitorError(
                f"bzImage of {len(data)} bytes overlaps the kernel load "
                f"address; increase the build scale"
            )
        memory.write(kl.BZIMAGE_LOAD_ADDR, data)
        loader = BootstrapLoader(cfg.loader_options)
        return loader.run(
            cfg.bzimage,
            memory,
            clock,
            costs,
            rng,
            cfg.randomize,
            guest_ram_bytes=cfg.mem_bytes,
            scale=cfg.kernel.scale,
            bus=bus,
        )

    # -- shared tail --------------------------------------------------------------

    def _finish_setup(self, cfg, memory, clock, layout, kernel_mem_bytes, costs):
        params = BootParams(cmdline_ptr=kl.CMDLINE_ADDR)
        params.add_e820(0, cfg.mem_bytes)
        if cfg.initrd:
            # Linux convention: the initrd sits near the top of low RAM.
            initrd_addr = (cfg.mem_bytes - len(cfg.initrd)) & ~0xFFF
            end = layout.phys_load + kernel_mem_bytes
            if initrd_addr <= end:
                raise MonitorError(
                    f"initrd of {len(cfg.initrd)} bytes does not fit above "
                    f"the kernel in {cfg.mem_mib} MiB of RAM"
                )
            memory.write(initrd_addr, cfg.initrd)
            params.initrd_ptr = initrd_addr
            params.initrd_size = len(cfg.initrd)
            clock.charge(
                costs.memcpy_ns(len(cfg.initrd)),
                category=BootCategory.IN_MONITOR,
                step=BootStep.MONITOR_IMAGE_READ,
                label=f"load initrd ({len(cfg.initrd)} bytes)",
            )
        if layout.randomized and cfg.boot_format is BootFormat.VMLINUX:
            params.flags |= BP_FLAG_IN_MONITOR_KASLR
            params.kaslr_virt_offset = layout.voffset
        memory.write(kl.CMDLINE_ADDR, cfg.effective_cmdline.encode() + b"\x00")
        memory.write(kl.BOOT_PARAMS_ADDR, params.pack())
        clock.charge(
            costs.vmm_boot_params(),
            category=BootCategory.IN_MONITOR,
            step=BootStep.MONITOR_BOOT_PARAMS,
            label="boot_params + cmdline",
        )
        builder = build_kernel_address_space(memory, layout, kernel_mem_bytes)
        clock.charge(
            costs.vmm_pagetable_ns(kernel_mem_bytes),
            category=BootCategory.IN_MONITOR,
            step=BootStep.MONITOR_PAGETABLE,
            label="early page tables",
        )
        return PageTableWalker(memory, builder.pml4), builder.tables_bytes

    def _enter_guest(self, cfg, clock, bus, walker, layout, costs):
        vcpu = VcpuState()
        if cfg.boot_protocol is BootProtocol.PVH:
            notes = parse_notes(cfg.kernel.elf.section(".notes").data)
            entry_paddr = find_pvh_entry(notes)
            if entry_paddr is None:
                raise MonitorError("PVH boot requested but kernel has no PVH note")
            vcpu.setup_protected_mode()
            vcpu.rbx = kl.BOOT_PARAMS_ADDR
            vcpu.rip = entry_paddr + (layout.phys_load - kl.PHYS_LOAD_ADDR)
        else:
            vcpu.setup_long_mode(cr3=walker.cr3)
            vcpu.rsi = kl.BOOT_PARAMS_ADDR
            vcpu.rip = layout.entry_vaddr
            problems = vcpu.validate_linux64_entry()
            if problems:
                raise MonitorError(
                    "64-bit boot protocol contract violated: " + "; ".join(problems)
                )
        clock.charge(
            self._guest_entry_ns(costs),
            category=BootCategory.IN_MONITOR,
            step=BootStep.MONITOR_GUEST_ENTRY,
            label="KVM_RUN",
        )
        # The guest fetches its first instruction: prove the entry mapping.
        if cfg.boot_protocol is BootProtocol.PVH:
            first = walker.memory.read(vcpu.rip, len(FUNCTION_PROLOGUE))
        else:
            first = walker.read_virt(vcpu.rip, len(FUNCTION_PROLOGUE))
        if first != FUNCTION_PROLOGUE:
            raise MonitorError(
                f"guest entry at {vcpu.rip:#x} does not hold startup code"
            )
        bus.write(TRACE_PORT, MILESTONE_KERNEL_ENTRY)

    def _run_guest(self, cfg, memory, clock, bus, walker, layout, costs):
        mem_ns, base_ns = costs.kernel_boot_ns(
            cfg.kernel.config.linux_boot_base_ms, cfg.mem_mib
        )
        clock.charge(
            mem_ns,
            category=BootCategory.LINUX_BOOT,
            step=BootStep.KERNEL_MEM_INIT,
            label=f"memblock/struct-page init for {cfg.mem_mib} MiB",
        )
        clock.charge(
            base_ns,
            category=BootCategory.LINUX_BOOT,
            step=BootStep.KERNEL_INIT,
            label="kernel subsystem init",
        )
        verification = verify_guest_kernel(memory, walker, layout, cfg.kernel.manifest)
        clock.charge(
            0,
            category=BootCategory.LINUX_BOOT,
            step=BootStep.KERNEL_RUN_INIT,
            label="exec /sbin/init",
        )
        bus.write(TRACE_PORT, MILESTONE_INIT_RUN)
        return verification

    # -- profile plumbing ------------------------------------------------------------

    def _startup_ns(self, costs) -> float:
        if self.profile.startup_ns is not None:
            return self.profile.startup_ns * costs.jitter.factor()
        return costs.vmm_startup()

    def _guest_entry_ns(self, costs) -> float:
        if self.profile.guest_entry_ns is not None:
            return self.profile.guest_entry_ns * costs.jitter.factor()
        return costs.vmm_guest_entry()


class Qemu(Firecracker):
    """The same machinery under QEMU-like monitor constants (Section 2.2)."""

    profile = QEMU_PROFILE
