"""Boot outcome: timing breakdown + layout + verification."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.inmonitor import RandomizeMode
from repro.core.layout_result import LayoutResult
from repro.kernel.verify import VerificationReport
from repro.simtime.trace import BootCategory, BootStep, StageSpan, Timeline
from repro.vm.portio import PortWrite


@dataclass
class BootReport:
    """Everything one simulated boot produced.

    Times are simulated milliseconds at paper scale (the cost model already
    projected scaled byte counts back to full-size kernels).
    """

    vmm_name: str
    kernel_name: str
    boot_format: str
    mode: RandomizeMode
    codec: str | None
    total_ms: float
    timeline: Timeline
    layout: LayoutResult
    verification: VerificationReport
    milestones: list[PortWrite]
    mem_mib: int
    cached: bool
    scale: int

    # -- breakdowns -------------------------------------------------------------

    def category_ms(self, category: BootCategory) -> float:
        return self.timeline.category_ns(category) / 1e6

    def breakdown_ms(self) -> dict[str, float]:
        return {
            category.value: ns / 1e6
            for category, ns in self.timeline.category_totals_ns().items()
        }

    def step_ms(self, step: BootStep) -> float:
        return self.timeline.step_ns(step) / 1e6

    def steps_ms(self) -> dict[str, float]:
        return {
            step.value: ns / 1e6 for step, ns in self.timeline.step_totals_ns().items()
        }

    @property
    def in_monitor_ms(self) -> float:
        return self.category_ms(BootCategory.IN_MONITOR)

    @property
    def bootstrap_setup_ms(self) -> float:
        return self.category_ms(BootCategory.BOOTSTRAP_SETUP)

    @property
    def decompression_ms(self) -> float:
        return self.category_ms(BootCategory.DECOMPRESSION)

    @property
    def linux_boot_ms(self) -> float:
        return self.category_ms(BootCategory.LINUX_BOOT)

    @property
    def bootstrap_loader_ms(self) -> float:
        """All time in the bootstrap loader (setup + decompression)."""
        return self.bootstrap_setup_ms + self.decompression_ms

    # -- pipeline stages --------------------------------------------------------

    @property
    def stages(self) -> list[StageSpan]:
        """The pipeline's per-stage begin/end spans, in execution order."""
        return list(self.timeline.spans)

    def stage_rows(self) -> list[list[str]]:
        """Table rows (stage, principal, start, charged, cache, detail)."""
        rows = []
        for span in self.stages:
            cache = (
                ""
                if span.cache_hit is None
                else ("hit" if span.cache_hit else "miss")
            )
            rows.append(
                [
                    span.name,
                    span.principal,
                    f"{span.start_ns / 1e6:.3f}",
                    f"{span.charged_ms:.3f}",
                    cache,
                    span.detail,
                ]
            )
        return rows

    def to_json(self) -> dict:
        """A JSON-serializable view of the whole boot (``repro boot --json``)."""
        return {
            "vmm": self.vmm_name,
            "kernel": self.kernel_name,
            "format": self.boot_format,
            "mode": str(self.mode),
            "codec": self.codec,
            "total_ms": self.total_ms,
            "cached": self.cached,
            "mem_mib": self.mem_mib,
            "scale": self.scale,
            "breakdown_ms": self.breakdown_ms(),
            "steps_ms": self.steps_ms(),
            "stages": [span.to_json() for span in self.stages],
            "layout": {
                "randomized": self.layout.randomized,
                "voffset": self.layout.voffset,
                "phys_load": self.layout.phys_load,
                "entropy_bits_base": self.layout.entropy_bits_base,
                "entropy_bits_fg": self.layout.entropy_bits_fg,
                "sections_moved": len(self.layout.moved),
            },
            "verification": {
                "functions_checked": self.verification.functions_checked,
                "sites_checked": self.verification.sites_checked,
                "kallsyms_checked": self.verification.kallsyms_checked,
            },
        }

    def summary(self) -> str:
        parts = [
            f"{self.kernel_name} via {self.vmm_name} ({self.boot_format}, "
            f"{self.mode})",
            f"total {self.total_ms:.2f} ms",
            f"in-monitor {self.in_monitor_ms:.2f}",
            f"bootstrap {self.bootstrap_setup_ms:.2f}",
            f"decompress {self.decompression_ms:.2f}",
            f"linux {self.linux_boot_ms:.2f}",
        ]
        return " | ".join(parts)
