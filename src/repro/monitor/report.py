"""Boot outcome: timing breakdown + layout + verification."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.inmonitor import RandomizeMode
from repro.core.layout_result import LayoutResult
from repro.kernel.verify import VerificationReport
from repro.simtime.trace import BootCategory, BootStep, Timeline
from repro.vm.portio import PortWrite


@dataclass
class BootReport:
    """Everything one simulated boot produced.

    Times are simulated milliseconds at paper scale (the cost model already
    projected scaled byte counts back to full-size kernels).
    """

    vmm_name: str
    kernel_name: str
    boot_format: str
    mode: RandomizeMode
    codec: str | None
    total_ms: float
    timeline: Timeline
    layout: LayoutResult
    verification: VerificationReport
    milestones: list[PortWrite]
    mem_mib: int
    cached: bool
    scale: int

    # -- breakdowns -------------------------------------------------------------

    def category_ms(self, category: BootCategory) -> float:
        return self.timeline.category_ns(category) / 1e6

    def breakdown_ms(self) -> dict[str, float]:
        return {
            category.value: ns / 1e6
            for category, ns in self.timeline.category_totals_ns().items()
        }

    def step_ms(self, step: BootStep) -> float:
        return self.timeline.step_ns(step) / 1e6

    def steps_ms(self) -> dict[str, float]:
        return {
            step.value: ns / 1e6 for step, ns in self.timeline.step_totals_ns().items()
        }

    @property
    def in_monitor_ms(self) -> float:
        return self.category_ms(BootCategory.IN_MONITOR)

    @property
    def bootstrap_setup_ms(self) -> float:
        return self.category_ms(BootCategory.BOOTSTRAP_SETUP)

    @property
    def decompression_ms(self) -> float:
        return self.category_ms(BootCategory.DECOMPRESSION)

    @property
    def linux_boot_ms(self) -> float:
        return self.category_ms(BootCategory.LINUX_BOOT)

    @property
    def bootstrap_loader_ms(self) -> float:
        """All time in the bootstrap loader (setup + decompression)."""
        return self.bootstrap_setup_ms + self.decompression_ms

    def summary(self) -> str:
        parts = [
            f"{self.kernel_name} via {self.vmm_name} ({self.boot_format}, "
            f"{self.mode})",
            f"total {self.total_ms:.2f} ms",
            f"in-monitor {self.in_monitor_ms:.2f}",
            f"bootstrap {self.bootstrap_setup_ms:.2f}",
            f"decompress {self.decompression_ms:.2f}",
            f"linux {self.linux_boot_ms:.2f}",
        ]
        return " | ".join(parts)
