"""Fleet instantiation through a shared monitor and boot-artifact cache.

Section 6's instantiation-rate experiment boots the same kernel image over
and over, as fast as the host allows.  :class:`FleetManager` reproduces
that workload: one :class:`~repro.monitor.vmm.Firecracker` instance serves
``count`` concurrent ``boot`` calls through a ``concurrent.futures`` worker
pool, with the seed-independent parse phase served from the shared
:class:`~repro.monitor.artifact_cache.BootArtifactCache` so only the
per-instance shuffle + offset draw + relocation pass runs on the hot path.

Determinism under concurrency: every per-boot seed is drawn up front from
``random.Random(fleet_seed)`` in launch order, each boot runs on a private
clock and cost-model clone, and the aggregate wall clock admits boots in
fleet-index order — so neither results nor timings depend on which Python
thread finished first.

Every launch also feeds the telemetry layer (:mod:`repro.telemetry`):
per-boot wall windows land in the boot-event log (one Chrome-trace track
per worker), and the fleet counters/histograms
(``repro_fleet_boots_total``, ``repro_boot_duration_ms``, rate and
makespan gauges) are what later perf PRs read their evidence from.

This module must not import :mod:`repro.analysis` (which itself imports
``repro.monitor``); the shared percentile/latency helpers live in the
dependency-free :mod:`repro.telemetry.stats`.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.errors import BootFailure, MonitorError
from repro.monitor.artifact_cache import BootArtifactCache, CacheScope, CacheStats
from repro.monitor.config import VmConfig
from repro.monitor.executor import default_workers, gil_bound_ns, make_boot_executor
from repro.monitor.report import BootReport
from repro.monitor.vmm import Firecracker, boot_identity
from repro.simtime.fleetclock import FleetWallClock
from repro.simtime.trace import BootStep
from repro.telemetry import Telemetry, get_telemetry
from repro.telemetry.stats import StageLatency, latency_summary, percentile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.security.audit import KaslrAuditor

__all__ = [
    "FLEET_STAGES",
    "FleetBoot",
    "FleetManager",
    "FleetReport",
    "StageLatency",
    "percentile",
]

#: per-boot stage buckets over the fine-grained trace steps; "total" is
#: added separately so every report always carries at least one stage
FLEET_STAGES: dict[str, tuple[BootStep, ...]] = {
    "monitor_startup": (BootStep.MONITOR_STARTUP,),
    "image_read": (BootStep.MONITOR_IMAGE_READ,),
    "parse": (BootStep.MONITOR_ELF_PARSE, BootStep.LOADER_ELF_PARSE),
    "randomize": (
        BootStep.MONITOR_RNG,
        BootStep.MONITOR_SHUFFLE,
        BootStep.MONITOR_RELOCATE,
        BootStep.MONITOR_TABLE_FIXUP,
        BootStep.LOADER_RNG,
        BootStep.LOADER_SHUFFLE,
        BootStep.LOADER_RELOCATE,
        BootStep.LOADER_TABLE_FIXUP,
    ),
    "segment_load": (BootStep.MONITOR_SEGMENT_LOAD, BootStep.LOADER_SEGMENT_LOAD),
    "bootstrap": (
        BootStep.LOADER_INIT,
        BootStep.LOADER_HEAP_ZERO,
        BootStep.LOADER_COPY_KERNEL,
        BootStep.LOADER_DECOMPRESS,
        BootStep.LOADER_JUMP,
    ),
    "vm_setup": (
        BootStep.MONITOR_BOOT_PARAMS,
        BootStep.MONITOR_PAGETABLE,
        BootStep.MONITOR_GUEST_ENTRY,
    ),
    "linux_boot": (
        BootStep.KERNEL_MEM_INIT,
        BootStep.KERNEL_INIT,
        BootStep.KERNEL_RUN_INIT,
    ),
}


@dataclass(frozen=True)
class FleetBoot:
    """One instance of the fleet: its boot outcome and wall-clock window."""

    index: int
    seed: int
    total_ms: float
    voffset: int
    wall_start_ms: float
    wall_end_ms: float
    report: BootReport
    #: which fleet worker slot the wall-clock model scheduled this boot on
    worker: int = 0

    @property
    def boot_id(self) -> str:
        return boot_identity(self.report.kernel_name, self.seed)


@dataclass(frozen=True)
class FleetReport:
    """What one fleet launch produced, for figures and regression gates."""

    kernel_name: str
    mode: str
    n_vms: int
    workers: int
    boots: tuple[FleetBoot, ...]
    stages: Mapping[str, StageLatency]
    cache: CacheStats
    serial_ms: float
    makespan_ms: float
    #: failure containment: boots that never succeeded (one terminal
    #: :class:`~repro.errors.BootFailure` per permanently failed index)
    #: and how many retry attempts the launch spent overall
    failures: tuple[BootFailure, ...] = ()
    retries: int = 0
    #: which boot backend ran the launch ("thread" | "process")
    executor: str = "thread"

    @property
    def speedup(self) -> float:
        return self.serial_ms / self.makespan_ms if self.makespan_ms else 1.0

    @property
    def rate_per_s(self) -> float:
        """Instantiation rate: fleet size over wall-clock seconds."""
        return self.n_vms / (self.makespan_ms / 1e3) if self.makespan_ms else 0.0

    # -- engine model (the BENCH_fleet_mp evidence) ----------------------------

    @property
    def gil_bound_ms(self) -> float:
        """Serialized work: timeline steps that hold the GIL, fleet-wide."""
        return sum(
            gil_bound_ns(boot.report.timeline) for boot in self.boots
        ) / 1e6

    @property
    def engine_makespan_ms(self) -> float:
        """Modeled wall makespan of the backend that ran this launch.

        A thread engine cannot finish before the GIL-bound work has run
        end to end on one interpreter, so its makespan is bounded below
        by :attr:`gil_bound_ms`; a process engine spreads that work
        across workers and keeps the scheduler's makespan.
        """
        if self.executor == "thread":
            return max(self.makespan_ms, self.gil_bound_ms)
        return self.makespan_ms

    @property
    def engine_rate_per_s(self) -> float:
        """Modeled instantiation rate under the engine makespan."""
        makespan = self.engine_makespan_ms
        return self.n_vms / (makespan / 1e3) if makespan else 0.0

    @property
    def unique_voffsets(self) -> int:
        return len({boot.voffset for boot in self.boots})

    @property
    def unique_layouts(self) -> int:
        """Distinct (voffset, section order) pairs across the fleet."""
        return len(
            {
                (boot.voffset, tuple(boot.report.layout.moved))
                for boot in self.boots
            }
        )

    def summary(self) -> str:
        text = (
            f"{self.kernel_name} fleet: {self.n_vms} VMs / {self.workers} workers"
            f" ({self.mode}) | wall {self.makespan_ms:.1f} ms"
            f" (serial {self.serial_ms:.1f}, x{self.speedup:.2f})"
            f" | {self.rate_per_s:.1f} VMs/s"
            f" | cache {self.cache.hits}h/{self.cache.misses}m"
            f"/{self.cache.evictions}e ({self.cache.hit_rate * 100:.1f}% hit)"
        )
        if self.failures or self.retries:
            text += (
                f" | {len(self.failures)} failed, {self.retries} retried"
            )
        return text

    def to_json(self) -> dict:
        """A JSON-serializable view of the launch (``repro fleet --json``)."""
        data = {
            "kernel": self.kernel_name,
            "mode": self.mode,
            "n_vms": self.n_vms,
            "workers": self.workers,
            "executor": self.executor,
            "serial_ms": self.serial_ms,
            "makespan_ms": self.makespan_ms,
            "speedup": self.speedup,
            "rate_per_s": self.rate_per_s,
            "engine": {
                "gil_bound_ms": self.gil_bound_ms,
                "makespan_ms": self.engine_makespan_ms,
                "rate_per_s": self.engine_rate_per_s,
            },
            "unique_voffsets": self.unique_voffsets,
            "unique_layouts": self.unique_layouts,
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "entries": self.cache.entries,
                "lookups": self.cache.lookups,
                "hit_rate": self.cache.hit_rate,
                "disk_hits": self.cache.disk_hits,
                "parses": self.cache.parses,
            },
            "stages": {
                name: {
                    "p50_ms": lat.p50_ms,
                    "p99_ms": lat.p99_ms,
                    "mean_ms": lat.mean_ms,
                    "max_ms": lat.max_ms,
                }
                for name, lat in self.stages.items()
            },
            "boots": [
                {
                    "index": boot.index,
                    "seed": boot.seed,
                    "total_ms": boot.total_ms,
                    "voffset": boot.voffset,
                    "wall_start_ms": boot.wall_start_ms,
                    "wall_end_ms": boot.wall_end_ms,
                    "worker": boot.worker,
                }
                for boot in self.boots
            ],
        }
        # only fault-touched launches carry the containment keys, so a
        # seeded launch with no plan stays byte-identical to the pre-fault
        # JSON shape (the disabled-overhead contract)
        if self.failures or self.retries:
            data["failures"] = [f.to_json() for f in self.failures]
            data["retries"] = self.retries
        return data

    def stage_rows(self) -> list[list[str]]:
        """Table rows (stage, p50, p99, mean, max) for the CLI/benchmarks."""
        return [
            [
                lat.stage,
                f"{lat.p50_ms:.3f}",
                f"{lat.p99_ms:.3f}",
                f"{lat.mean_ms:.3f}",
                f"{lat.max_ms:.3f}",
            ]
            for lat in self.stages.values()
        ]


def _stage_latencies(reports: Sequence[BootReport]) -> dict[str, StageLatency]:
    if not reports:
        # every boot failed: no samples exist, and latency_summary now
        # refuses to fabricate an all-zero row from an empty sample set
        return {}
    totals = [report.timeline.step_totals_ns() for report in reports]
    stages: dict[str, StageLatency] = {}
    for stage, steps in FLEET_STAGES.items():
        samples = [sum(t.get(s, 0) for s in steps) / 1e6 for t in totals]
        if not any(samples):
            continue  # stage never ran (e.g. loader stages on a vmlinux fleet)
        stages[stage] = latency_summary(stage, samples)
    stages["total"] = latency_summary("total", [r.total_ms for r in reports])
    return stages


class FleetManager:
    """Boots fleets of microVMs through one shared monitor.

    The monitor gains a :class:`BootArtifactCache` if it does not already
    hold one — a fleet is exactly the workload the cache exists for.
    """

    def __init__(
        self,
        vmm: Firecracker,
        workers: int | None = None,
        telemetry: Telemetry | None = None,
        auditor: "KaslrAuditor | None" = None,
        tracer=None,
        executor: str = "thread",
    ) -> None:
        if workers is None:
            workers = default_workers(8)
        if workers < 1:
            raise MonitorError(f"fleet needs at least one worker, got {workers}")
        self.vmm = vmm
        self.workers = workers
        self.telemetry = telemetry
        #: boot backend: a name ("thread" | "process") or any object with
        #: the executor ``launch`` context-manager interface
        if isinstance(executor, str):
            executor = make_boot_executor(executor)
        self.executor = executor
        #: optional KASLR auditor; fed one layout fingerprint per boot
        self.auditor = auditor
        #: optional :class:`~repro.telemetry.tracing.RequestTracer` scope;
        #: each fleet index gets a ``boot/<index>`` trace carrying the
        #: pipeline's stage spans (retries append to the same trace)
        self.tracer = tracer
        if vmm.artifact_cache is None:
            vmm.artifact_cache = BootArtifactCache()

    def _telemetry(self) -> Telemetry:
        """Scoping: the fleet's own, else the monitor's, else the default."""
        if self.telemetry is not None:
            return self.telemetry
        if self.vmm.telemetry is not None:
            return self.vmm.telemetry
        return get_telemetry()

    def launch(
        self,
        cfg: VmConfig,
        count: int,
        fleet_seed: int = 0,
        seeds: Sequence[int] | None = None,
        warm: bool = True,
        retries: int = 1,
    ) -> FleetReport:
        """Boot ``count`` instances of ``cfg``, each with its own seed.

        ``seeds`` overrides the per-instance seeds; otherwise they are drawn
        up front from ``random.Random(fleet_seed)``.  ``warm`` models the
        paper's warm-up boots: the host page cache and the artifact cache
        are primed before measurement, so the counters in the returned
        report cover only the fleet itself.

        Failure containment: one boot raising no longer aborts the fleet.
        Each failed boot is captured as a :class:`BootFailure` and retried
        with a fresh seed up to ``retries`` times (seeds redrawn from a
        dedicated ``random.Random`` stream in fleet-index order, so the
        outcome is deterministic regardless of thread scheduling); boots
        that exhaust the budget land in ``FleetReport.failures`` and the
        fleet completes with the survivors.
        """
        if count < 1:
            raise MonitorError(f"fleet needs at least one VM, got {count}")
        if retries < 0:
            raise MonitorError(f"retry budget cannot be negative: {retries}")
        if seeds is None:
            rng = random.Random(fleet_seed)
            seeds = [rng.getrandbits(64) for _ in range(count)]
        elif len(seeds) != count:
            raise MonitorError(
                f"fleet of {count} VMs given {len(seeds)} seeds"
            )
        cache = self.vmm.artifact_cache
        assert cache is not None  # installed in __init__
        if warm:
            # warm_caches primes the host page cache *and* the artifact
            # cache entry the pipeline's caching stage will probe; the
            # priming itself stays outside the launch scope, so the
            # report's cache stats cover only the fleet's own boots
            self.vmm.warm_caches(cfg)
        # per-launch attribution scope: every boot notes its cache
        # activity here, so concurrent launches sharing one cache each
        # report exactly their own traffic (a before/after stats() delta
        # would blend them)
        scope = CacheScope()

        telemetry = self._telemetry()
        seeds_used = list(seeds)
        reports, failures, total_retries = self._boot_waves(
            cfg, seeds_used, retries, telemetry, scope, warm
        )

        wall = FleetWallClock(self.workers)
        boots = []
        succeeded = [
            (index, seed, report)
            for index, (seed, report) in enumerate(zip(seeds_used, reports))
            if report is not None
        ]
        for index, seed, report in succeeded:
            window = wall.schedule(report.timeline.total_ns)
            boots.append(
                FleetBoot(
                    index=index,
                    seed=seed,
                    total_ms=report.total_ms,
                    voffset=report.layout.voffset,
                    wall_start_ms=window.start_ns / 1e6,
                    wall_end_ms=window.end_ns / 1e6,
                    report=report,
                    worker=window.worker,
                )
            )
            # fleet-index order, after the parallel section: the telemetry
            # feed is deterministic regardless of thread scheduling
            telemetry.boot_window(
                boot_identity(cfg.kernel.name, seed),
                worker=window.worker,
                start_ns=window.start_ns,
                duration_ns=window.duration_ns,
                detail=f"fleet index {index}",
            )
            telemetry.registry.counter(
                "repro_fleet_boots_total", help="Boots launched by fleets"
            ).inc()
            if self.auditor is not None:
                self.auditor.record(
                    boot_identity(cfg.kernel.name, seed),
                    strategy=str(cfg.randomize),
                    t_ns=window.end_ns,
                    layout=report.layout,
                )
        telemetry.registry.counter(
            "repro_fleet_launches_total", help="Fleet launches"
        ).inc()
        telemetry.registry.gauge(
            "repro_fleet_makespan_ms", help="Wall-clock makespan of the last fleet"
        ).set(wall.makespan_ms)
        telemetry.registry.gauge(
            "repro_fleet_rate_vms_per_s",
            help="Instantiation rate of the last fleet",
        ).set(
            len(succeeded) / (wall.makespan_ms / 1e3) if wall.makespan_ms else 0.0
        )
        return FleetReport(
            kernel_name=cfg.kernel.name,
            mode=str(cfg.randomize),
            n_vms=count,
            workers=self.workers,
            boots=tuple(boots),
            stages=_stage_latencies([report for _, _, report in succeeded]),
            cache=scope.snapshot(entries=cache.stats().entries),
            serial_ms=wall.serial_ms,
            makespan_ms=wall.makespan_ms,
            failures=tuple(failures),
            retries=total_retries,
            executor=self.executor.name,
        )

    def _boot_waves(
        self,
        cfg: VmConfig,
        seeds_used: list[int],
        retries: int,
        telemetry: Telemetry,
        scope: CacheScope,
        warm: bool,
    ) -> tuple[list[BootReport | None], list[BootFailure], int]:
        """Boot every index, containing failures and retrying in waves.

        One executor launch brackets *all* waves: wave 0 submits every
        boot, each later wave resubmits the indices that failed — on the
        same worker pool, so retries reuse workers instead of paying
        pool (or worker-process) churn per wave.  Fresh retry seeds are
        drawn in sorted-index order from a dedicated stream.  Outcomes
        are collected per future (never ``pool.map``), so one raising
        boot cannot abort the others, and all retry decisions happen
        between waves on the caller's thread — results are a pure
        function of (cfg, seeds, retry stream).
        """
        count = len(seeds_used)
        # the retry stream is independent of the launch stream (so a
        # no-failure launch consumes exactly the pre-containment draws)
        # and keyed on a stable digest of the initial seeds — never on
        # hash(), whose string randomization varies per process
        digest = hashlib.sha256(
            ("retry:" + ",".join(str(s) for s in seeds_used)).encode()
        ).digest()
        retry_rng = random.Random(int.from_bytes(digest[:8], "big"))
        reports: list[BootReport | None] = [None] * count
        last_failure: dict[int, BootFailure] = {}
        pending = [(index, replace(cfg, seed=seed)) for index, seed in enumerate(seeds_used)]
        total_retries = 0
        with self.executor.launch(
            vmm=self.vmm,
            cfg=cfg,
            workers=self.workers,
            scope=scope,
            telemetry=telemetry,
            profiler=self.vmm.profiler,
            warm=warm,
        ) as pool:
            for attempt in range(retries + 1):
                if not pending:
                    break
                wave_failures: dict[int, BootFailure] = {}
                futures = [
                    (
                        index,
                        boot_cfg,
                        pool.submit(
                            boot_cfg,
                            index,
                            attempt,
                            (
                                self.tracer.trace(f"boot/{index}")
                                if self.tracer is not None
                                else None
                            ),
                        ),
                    )
                    for index, boot_cfg in pending
                ]
                for index, boot_cfg, future in futures:
                    try:
                        reports[index] = future.result()
                    except Exception as exc:  # contained, never fatal
                        wave_failures[index] = BootFailure.from_exception(
                            exc,
                            boot_id=boot_identity(
                                cfg.kernel.name, boot_cfg.seed
                            ),
                            attempt=attempt,
                            index=index,
                            seed=boot_cfg.seed,
                        )
                pending = []
                for index in sorted(wave_failures):
                    last_failure[index] = wave_failures[index]
                    if attempt < retries:
                        fresh_seed = retry_rng.getrandbits(64)
                        seeds_used[index] = fresh_seed
                        pending.append((index, replace(cfg, seed=fresh_seed)))
                        total_retries += 1
                        telemetry.registry.counter(
                            "repro_fleet_retries_total",
                            help="Fleet boot retry attempts",
                        ).inc()
        failures = [last_failure[index] for index in sorted(last_failure) if reports[index] is None]
        return reports, failures, total_retries
