"""Virtual machine monitors.

:class:`Firecracker` models the paper's modified Firecracker v0.26: direct
vmlinux boot (Linux 64-bit or PVH protocol), optional bzImage boot (the
PR-670-style patch), and in-monitor (FG)KASLR behind an extra relocs
argument (Figure 8).  :class:`Qemu` is the same machinery under QEMU-like
monitor constants, used for the Section 2.2 cross-check.
"""

from repro.monitor.artifact_cache import (
    BootArtifactCache,
    CacheScope,
    CacheStats,
    DiskCacheTier,
)
from repro.monitor.config import BootFormat, BootProtocol, VmConfig
from repro.monitor.executor import (
    BootExecutor,
    ProcessBootExecutor,
    ThreadBootExecutor,
    default_workers,
    make_boot_executor,
)
from repro.monitor.fleet import FleetBoot, FleetManager, FleetReport, StageLatency
from repro.monitor.leases import InstanceLease, LeaseRegistry
from repro.monitor.report import BootReport
from repro.monitor.sharedmem import SharedArtifactStore, SharedBlob
from repro.monitor.vm_handle import MicroVm
from repro.monitor.vmm import Firecracker, MonitorProfile, Qemu

__all__ = [
    "BootArtifactCache",
    "BootExecutor",
    "BootFormat",
    "BootProtocol",
    "BootReport",
    "CacheScope",
    "CacheStats",
    "DiskCacheTier",
    "Firecracker",
    "FleetBoot",
    "FleetManager",
    "FleetReport",
    "InstanceLease",
    "LeaseRegistry",
    "MicroVm",
    "MonitorProfile",
    "ProcessBootExecutor",
    "Qemu",
    "SharedArtifactStore",
    "SharedBlob",
    "StageLatency",
    "ThreadBootExecutor",
    "VmConfig",
    "default_workers",
    "make_boot_executor",
]
