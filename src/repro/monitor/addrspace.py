"""Guest address-space bring-up for direct kernel boot.

Direct boot skips the guest's real-mode/protected-mode ladder, so the
controlling principal must leave behind everything ``startup_64`` expects:
identity-mapped low memory plus the kernel's (randomized) high mapping.
"""

from __future__ import annotations

from repro.core.layout_result import LayoutResult
from repro.kernel import layout as kl
from repro.vm.memory import GuestMemory
from repro.vm.pagetable import PAGE_1G, PageTableBuilder


def build_kernel_address_space(
    memory: GuestMemory,
    layout: LayoutResult,
    kernel_mem_bytes: int,
) -> PageTableBuilder:
    """Build the early page tables; returns the builder (CR3 = ``.pml4``).

    Maps the first GiBs of guest RAM identity (1 GiB pages) and the kernel
    window ``LINK_VBASE + voffset -> phys_load`` with 2 MiB pages — the
    same structure Firecracker's ``arch::x86_64`` setup and the bootstrap
    loader both build.
    """
    builder = PageTableBuilder(memory, kl.PAGE_TABLE_BASE)
    identity_gigs = max(1, -(-memory.size // PAGE_1G))
    builder.map_identity_1g(identity_gigs)
    builder.map_2m(
        kl.LINK_VBASE + layout.voffset,
        layout.phys_load,
        kernel_mem_bytes,
    )
    return builder
