"""Artifact-style experiment runners (Appendix A: E1–E5).

The paper's artifact exposes one shell script per experiment
(``run_compression_bakeoff.sh``, ``run_cache_effects.sh``, ...).  This
module is the library equivalent: one function per experiment, returning
structured rows plus a rendered table, runnable programmatically or via
``python -m repro experiment <id>``.  The pytest benchmarks in
``benchmarks/`` remain the asserted versions of the same measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis import render_table, run_boots
from repro.artifacts import get_bzimage, get_kernel
from repro.core import RandomizeMode
from repro.host import HostStorage
from repro.kernel import AWS, LUPINE, UBUNTU, KernelVariant
from repro.lebench import run_lebench
from repro.monitor import BootFormat, Firecracker, VmConfig
from repro.simtime import BootCategory, CostModel, JitterModel

_KERNELS = [LUPINE, AWS, UBUNTU]
_VARIANT = {
    RandomizeMode.NONE: KernelVariant.NOKASLR,
    RandomizeMode.KASLR: KernelVariant.KASLR,
    RandomizeMode.FGKASLR: KernelVariant.FGKASLR,
}


@dataclass
class ExperimentResult:
    """One experiment's output."""

    experiment: str
    description: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)

    def table(self) -> str:
        return render_table(
            self.headers, self.rows, title=f"{self.experiment}: {self.description}"
        )


@dataclass
class _Env:
    boots: int
    scale: int
    vmm: Firecracker

    @classmethod
    def make(cls, boots: int, scale: int) -> "_Env":
        costs = CostModel(scale=scale, jitter=JitterModel(sigma=0.02))
        return cls(boots=boots, scale=scale, vmm=Firecracker(HostStorage(), costs))

    def direct(self, config, mode: RandomizeMode, **kw) -> VmConfig:
        kernel = get_kernel(config, _VARIANT[mode], scale=self.scale)
        return VmConfig(kernel=kernel, randomize=mode, **kw)

    def bzimage(self, config, mode, codec, optimized=False, **kw) -> VmConfig:
        kernel = get_kernel(config, _VARIANT[mode], scale=self.scale)
        bz = get_bzimage(
            config, _VARIANT[mode], codec, scale=self.scale, optimized=optimized
        )
        return VmConfig(
            kernel=kernel, boot_format=BootFormat.BZIMAGE, bzimage=bz,
            randomize=mode, **kw,
        )

    def measure(self, cfg: VmConfig, warm: bool = True):
        return run_boots(self.vmm, cfg, n=self.boots, warm=warm)


def e1_compression_bakeoff(boots: int = 20, scale: int = 16) -> ExperimentResult:
    """E1 [Fig 3]: boot time per compression scheme, cached."""
    env = _Env.make(boots, scale)
    result = ExperimentResult(
        "E1", "compression bakeoff (cached boots)",
        ["kernel", "codec", "boot ms", "min", "max"],
    )
    for config in _KERNELS:
        for codec in ("gzip", "bzip2", "lzma", "xz", "lzo", "lz4"):
            series = env.measure(env.bzimage(config, RandomizeMode.NONE, codec))
            stats = series.total
            result.rows.append(
                [config.name, codec, stats.mean, stats.min, stats.max]
            )
    return result


def e2_cache_effects(boots: int = 20, scale: int = 16) -> ExperimentResult:
    """E2 [Fig 4+5]: bzImage vs direct boot, cold and warm cache."""
    env = _Env.make(boots, scale)
    result = ExperimentResult(
        "E2", "cache effects: lz4 bzImage vs direct vmlinux",
        ["kernel", "cache", "direct ms", "bzImage ms", "winner"],
    )
    for config in _KERNELS:
        for cached in (False, True):
            direct = env.measure(env.direct(config, RandomizeMode.NONE), warm=cached)
            bz = env.measure(
                env.bzimage(config, RandomizeMode.NONE, "lz4"), warm=cached
            )
            result.rows.append(
                [
                    config.name,
                    "warm" if cached else "cold",
                    direct.total.mean,
                    bz.total.mean,
                    "direct" if direct.total.mean < bz.total.mean else "bzImage",
                ]
            )
    return result


def e3_bootstrap_comparison(boots: int = 20, scale: int = 16) -> ExperimentResult:
    """E3 [Fig 6]: none / lz4 / none-optimized / uncompressed."""
    env = _Env.make(boots, scale)
    result = ExperimentResult(
        "E3", "bootstrap method comparison (nokaslr, cached)",
        ["kernel", "method", "boot ms"],
    )
    methods: list[tuple[str, Callable[[object], VmConfig]]] = [
        ("none", lambda c: env.bzimage(c, RandomizeMode.NONE, "none")),
        ("lz4", lambda c: env.bzimage(c, RandomizeMode.NONE, "lz4")),
        ("none-optimized",
         lambda c: env.bzimage(c, RandomizeMode.NONE, "none", optimized=True)),
        ("uncompressed", lambda c: env.direct(c, RandomizeMode.NONE)),
    ]
    for config in _KERNELS:
        for name, make in methods:
            result.rows.append(
                [config.name, name, env.measure(make(config)).total.mean]
            )
    return result


def e4_evaluation(boots: int = 20, scale: int = 16) -> ExperimentResult:
    """E4 [Fig 9]: in-monitor vs self-randomized (FG)KASLR."""
    env = _Env.make(boots, scale)
    result = ExperimentResult(
        "E4", "in-monitor vs self-randomization",
        ["kernel", "rando", "method", "total ms", "in-monitor ms", "bootstrap ms"],
    )
    for config in _KERNELS:
        for mode in RandomizeMode:
            combos = [("uncompressed", env.direct(config, mode))]
            combos.append(
                ("compression-none",
                 env.bzimage(config, mode, "none", optimized=True))
            )
            combos.append(("lz4", env.bzimage(config, mode, "lz4")))
            for method, cfg in combos:
                series = env.measure(cfg)
                result.rows.append(
                    [
                        config.name,
                        str(mode),
                        method,
                        series.total.mean,
                        series.category(BootCategory.IN_MONITOR).mean,
                        series.category(BootCategory.BOOTSTRAP_SETUP).mean
                        + series.category(BootCategory.DECOMPRESSION).mean,
                    ]
                )
    return result


def e5_lebench(boots: int = 1, scale: int = 16) -> ExperimentResult:
    """E5 [Fig 11]: LEBench normalized to aws-nokaslr."""
    env = _Env.make(max(boots, 1), scale)
    runs = {}
    for mode in RandomizeMode:
        cfg = env.direct(AWS, mode, seed=1)
        env.vmm.warm_caches(cfg)
        report = env.vmm.boot(cfg)
        runs[mode] = run_lebench(cfg.kernel, report.layout)
    base = runs[RandomizeMode.NONE]
    result = ExperimentResult(
        "E5", "LEBench normalized to aws-nokaslr",
        ["test", "kaslr", "fgkaslr"],
    )
    kaslr = runs[RandomizeMode.KASLR].normalized_to(base)
    fg = runs[RandomizeMode.FGKASLR].normalized_to(base)
    for name in kaslr:
        result.rows.append([name, f"{kaslr[name]:.3f}", f"{fg[name]:.3f}"])
    result.rows.append(
        [
            "== mean ==",
            f"{runs[RandomizeMode.KASLR].mean_normalized(base):.3f}",
            f"{runs[RandomizeMode.FGKASLR].mean_normalized(base):.3f}",
        ]
    )
    return result


EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "e1": e1_compression_bakeoff,
    "e2": e2_cache_effects,
    "e3": e3_bootstrap_comparison,
    "e4": e4_evaluation,
    "e5": e5_lebench,
}


def run_experiment(
    experiment_id: str, boots: int = 20, scale: int = 16
) -> ExperimentResult:
    """Run one artifact experiment by id (``e1`` .. ``e5``)."""
    try:
        runner = EXPERIMENTS[experiment_id.lower()]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; choose from "
            f"{sorted(EXPERIMENTS)}"
        ) from None
    return runner(boots=boots, scale=scale)
