"""LEBench: post-boot kernel microbenchmarks (Figure 11).

Section 5.4 measures whether randomization costs anything *after* boot.
Base KASLR should be noise (<1%): a 2 MiB-aligned shift preserves every
cache-set and TLB-page relationship.  FGKASLR costs ~7% on average because
scattering functions breaks the instruction-locality the linker built —
the mechanism this package actually simulates, with an L1i cache and
large-page ITLB walked over each workload's hot functions at their *final*
(post-shuffle) addresses.
"""

from repro.lebench.cache import ICache, Itlb
from repro.lebench.runner import LeBenchResult, TestResult, run_lebench
from repro.lebench.workloads import LEBENCH_TESTS, LeBenchTest

__all__ = [
    "ICache",
    "Itlb",
    "LEBENCH_TESTS",
    "LeBenchResult",
    "LeBenchTest",
    "TestResult",
    "run_lebench",
]
