"""LEBench runner over a booted (randomized) kernel layout.

For each test the runner walks the hot function path at the functions'
*final* virtual addresses — so a base-KASLR layout (uniform 2 MiB-aligned
shift) produces byte-identical cache/TLB behaviour to nokaslr, while an
FGKASLR layout scatters the path across the whole text region and pays
i-cache and large-page-ITLB misses every iteration.  Per-iteration time is
``base + icache_misses*miss_ns + itlb_misses*walk_ns``, measured at steady
state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.layout_result import LayoutResult
from repro.kernel.image import KernelImage
from repro.lebench.cache import ICache, Itlb
from repro.lebench.workloads import LEBENCH_TESTS, LeBenchTest

#: L1i miss service time (L2 hit) and 2 MiB-page walk cost, ns
L1I_MISS_NS = 3.6
ITLB_WALK_NS = 24.0
_WARM_ITERS = 4
_MEASURE_ITERS = 4


@dataclass(frozen=True)
class TestResult:
    name: str
    ns_per_iter: float
    icache_misses: float
    itlb_misses: float


@dataclass
class LeBenchResult:
    """All test timings for one kernel layout."""

    kernel_name: str
    results: list[TestResult] = field(default_factory=list)

    def by_name(self) -> dict[str, TestResult]:
        return {r.name: r for r in self.results}

    def normalized_to(self, baseline: "LeBenchResult") -> dict[str, float]:
        """Per-test slowdown vs a baseline run (1.0 = identical)."""
        base = baseline.by_name()
        return {
            r.name: r.ns_per_iter / base[r.name].ns_per_iter for r in self.results
        }

    def mean_normalized(self, baseline: "LeBenchResult") -> float:
        ratios = self.normalized_to(baseline)
        return sum(ratios.values()) / len(ratios)


def _run_test(
    test: LeBenchTest, kernel: KernelImage, layout: LayoutResult
) -> TestResult:
    functions = kernel.manifest.functions
    start = test.hot_set_start(len(functions))
    hot = functions[start : start + test.hot_functions]
    icache = ICache()
    # The build is 1/scale of a paper-size kernel, so the ITLB page size is
    # scaled down with it to preserve the pages-touched geometry.
    itlb = Itlb(page_bytes=max(4096, (2 * 1024 * 1024) // kernel.scale))
    # Warm up to steady state, then measure.
    for _ in range(_WARM_ITERS):
        _walk(test, hot, layout, icache, itlb)
    icache.hits = icache.misses = 0
    itlb.hits = itlb.misses = 0
    for _ in range(_MEASURE_ITERS):
        _walk(test, hot, layout, icache, itlb)
    ic = icache.misses / _MEASURE_ITERS
    it = itlb.misses / _MEASURE_ITERS
    ns = test.base_ns + ic * L1I_MISS_NS + it * ITLB_WALK_NS
    return TestResult(
        name=test.name, ns_per_iter=ns, icache_misses=ic, itlb_misses=it
    )


def _walk(test, hot, layout, icache, itlb) -> None:
    for func in hot:
        vaddr = layout.final_vaddr(func.link_vaddr)
        itlb.access(vaddr)
        nbytes = min(func.size, test.bytes_per_function)
        icache.access_range(vaddr, nbytes)


def run_lebench(
    kernel: KernelImage,
    layout: LayoutResult,
    tests: list[LeBenchTest] | None = None,
) -> LeBenchResult:
    """Run the suite against one booted layout."""
    suite = tests if tests is not None else LEBENCH_TESTS
    result = LeBenchResult(kernel_name=kernel.name)
    for test in suite:
        result.results.append(_run_test(test, kernel, layout))
    return result
