"""LEBench workload definitions.

The test list follows the LEBench suite the paper runs (performance-
critical system calls).  Each test is modelled as a hot path through a
*contiguous run* of kernel functions — contiguous at link time because
kernels co-locate related code (subsystem files, hot/cold splitting), which
is exactly the locality FGKASLR destroys.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass


@dataclass(frozen=True)
class LeBenchTest:
    """One microbenchmark: a syscall path over a hot function set."""

    name: str
    #: pure-execution time per iteration, excluding i-side stalls (ns)
    base_ns: float
    #: how many consecutive link-time functions the hot path spans
    hot_functions: int
    #: hot bytes executed per function visit
    bytes_per_function: int = 320

    def hot_set_start(self, n_functions: int) -> int:
        """Deterministic first-function index for this test's hot run."""
        span = max(1, n_functions - self.hot_functions)
        return zlib.crc32(self.name.encode("ascii")) % span


#: the Figure 11 test list (LEBench's performance-critical kernel paths)
LEBENCH_TESTS: list[LeBenchTest] = [
    LeBenchTest("ref", 55.0, 2),
    LeBenchTest("getpid", 65.0, 3),
    LeBenchTest("context switch", 1450.0, 24),
    LeBenchTest("send", 1900.0, 28),
    LeBenchTest("recv", 2000.0, 30),
    LeBenchTest("fork", 24000.0, 64),
    LeBenchTest("big fork", 52000.0, 80),
    LeBenchTest("thread create", 15000.0, 48),
    LeBenchTest("small read", 900.0, 14),
    LeBenchTest("big read", 7800.0, 18),
    LeBenchTest("small write", 950.0, 14),
    LeBenchTest("big write", 8200.0, 18),
    LeBenchTest("small mmap", 2600.0, 22),
    LeBenchTest("big mmap", 11000.0, 26),
    LeBenchTest("small munmap", 1700.0, 18),
    LeBenchTest("big munmap", 6900.0, 20),
    LeBenchTest("small page fault", 1400.0, 16),
    LeBenchTest("big page fault", 9200.0, 20),
    LeBenchTest("select", 1200.0, 16),
    LeBenchTest("poll", 1300.0, 16),
    LeBenchTest("epoll", 1350.0, 18),
]
