"""Set-associative L1 instruction cache and large-page ITLB models."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class ICache:
    """An LRU set-associative instruction cache (i7-4790 L1i by default)."""

    size_bytes: int = 32 * 1024
    line_bytes: int = 64
    ways: int = 8
    _sets: list[OrderedDict[int, None]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ValueError("cache geometry does not divide evenly")
        self.n_sets = self.size_bytes // (self.line_bytes * self.ways)
        self.reset()

    def reset(self) -> None:
        self._sets = [OrderedDict() for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def access_line(self, line_addr: int) -> bool:
        """Touch one line address; returns True on hit."""
        index = line_addr % self.n_sets
        ways = self._sets[index]
        if line_addr in ways:
            ways.move_to_end(line_addr)
            self.hits += 1
            return True
        self.misses += 1
        ways[line_addr] = None
        if len(ways) > self.ways:
            ways.popitem(last=False)
        return False

    def access_range(self, vaddr: int, nbytes: int) -> int:
        """Fetch a byte range; returns the number of line misses."""
        before = self.misses
        first = vaddr // self.line_bytes
        last = (vaddr + max(nbytes, 1) - 1) // self.line_bytes
        for line in range(first, last + 1):
            self.access_line(line)
        return self.misses - before


@dataclass
class Itlb:
    """A small fully-associative LRU TLB for 2 MiB instruction pages."""

    entries: int = 8
    page_bytes: int = 2 * 1024 * 1024
    _slots: OrderedDict[int, None] = field(default_factory=OrderedDict, repr=False)

    def __post_init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self._slots = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, vaddr: int) -> bool:
        """Touch the page containing ``vaddr``; returns True on hit."""
        page = vaddr // self.page_bytes
        if page in self._slots:
            self._slots.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        self._slots[page] = None
        if len(self._slots) > self.entries:
            self._slots.popitem(last=False)
        return False
