"""Run aggregation and text rendering for the benchmark harness."""

from repro.analysis.report import render_bars, render_table
from repro.analysis.stats import BootSeries, Stats, run_boots
from repro.analysis.timeline_render import render_step_ranking, render_timeline

__all__ = [
    "BootSeries",
    "Stats",
    "render_bars",
    "render_step_ranking",
    "render_table",
    "render_timeline",
    "run_boots",
]
