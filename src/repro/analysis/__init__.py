"""Run aggregation and text rendering for the benchmark harness."""

from repro.analysis.report import render_bars, render_table
from repro.analysis.stats import (
    BootSeries,
    StageLatency,
    Stats,
    latency_summary,
    percentile,
    run_boots,
)
from repro.analysis.timeline_render import render_step_ranking, render_timeline

__all__ = [
    "BootSeries",
    "StageLatency",
    "Stats",
    "latency_summary",
    "percentile",
    "render_bars",
    "render_step_ranking",
    "render_table",
    "render_timeline",
    "run_boots",
]
