"""Aggregation over repeated boots.

The paper reports the average over 100 boots with min/max error bars,
after 5 cache-warming boots (Section 5.1).  :func:`run_boots` reproduces
that protocol on the simulated monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean, pstdev

from repro.monitor.config import VmConfig
from repro.monitor.report import BootReport
from repro.monitor.vmm import Firecracker
from repro.simtime.trace import BootCategory

# Shared summary helpers live in the dependency-free telemetry layer;
# re-exported here so analysis callers keep one import site.
from repro.telemetry.stats import (  # noqa: F401  (re-export)
    StageLatency,
    latency_summary,
    percentile,
)

WARMUP_BOOTS = 5


@dataclass(frozen=True)
class Stats:
    """mean/min/max/std of one measured quantity."""

    mean: float
    min: float
    max: float
    n: int
    std: float = 0.0

    @classmethod
    def of(cls, values: list[float]) -> "Stats":
        if not values:
            raise ValueError("no samples")
        return cls(
            mean=mean(values),
            min=min(values),
            max=max(values),
            n=len(values),
            std=pstdev(values) if len(values) > 1 else 0.0,
        )

    def speedup_over(self, other: "Stats") -> float:
        """Fractional improvement of this series over ``other`` (its mean)."""
        if other.mean == 0:
            raise ValueError("cannot compare against a zero-mean series")
        return (other.mean - self.mean) / other.mean

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.2f} [{self.min:.2f}, {self.max:.2f}] (n={self.n})"


@dataclass
class BootSeries:
    """All reports from one measurement series plus derived stats."""

    label: str
    reports: list[BootReport] = field(default_factory=list)

    @property
    def total(self) -> Stats:
        return Stats.of([r.total_ms for r in self.reports])

    def category(self, category: BootCategory) -> Stats:
        return Stats.of([r.category_ms(category) for r in self.reports])

    def breakdown_means(self) -> dict[str, float]:
        return {c.value: self.category(c).mean for c in BootCategory}

    @property
    def first(self) -> BootReport:
        return self.reports[0]


def run_boots(
    vmm: Firecracker,
    cfg: VmConfig,
    n: int = 20,
    seed0: int = 1000,
    warm: bool = True,
    warmup: int = WARMUP_BOOTS,
    label: str | None = None,
) -> BootSeries:
    """Measure ``n`` boots following the paper's protocol.

    ``warm=True`` warms the page cache (``warmup`` unmeasured boots);
    ``warm=False`` drops host caches before every measured boot.
    Each boot gets a distinct deterministic seed (``seed0 + i``).
    """
    series = BootSeries(label=label or f"{cfg.kernel.name}/{cfg.randomize}")
    if warm:
        vmm.register_kernel(cfg)
        for _ in range(max(warmup, 1)):
            vmm.warm_caches(cfg)
    for i in range(n):
        cfg.seed = seed0 + i
        cfg.drop_caches = not warm
        series.reports.append(vmm.boot(cfg))
    return series
