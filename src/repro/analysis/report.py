"""Plain-text tables and bar charts for benchmark output.

The harness prints the same rows/series the paper's figures plot; these
helpers keep that output readable in a terminal and in the captured
``bench_output.txt``.
"""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Monospace table with right-aligned numeric columns."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(
                cell.rjust(widths[i]) if _numeric(cell) else cell.ljust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def render_bars(
    items: Sequence[tuple[str, float]],
    width: int = 46,
    unit: str = "ms",
    title: str = "",
) -> str:
    """Horizontal bar chart scaled to the largest value."""
    if not items:
        return title
    top = max(value for _, value in items) or 1.0
    label_width = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        bar = "#" * max(1, round(value / top * width))
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.2f} {unit}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def _numeric(cell: str) -> bool:
    try:
        float(cell.rstrip("%xKMG"))
    except ValueError:
        return False
    return True
