"""ASCII rendering of a boot timeline.

Turns a :class:`~repro.simtime.trace.Timeline` into a Gantt-style chart:
one row per boot phase (category), bars positioned proportionally in
simulated time — the visual equivalent of the paper's stacked-bar boot
breakdowns.
"""

from __future__ import annotations

from repro.simtime.trace import BootCategory, Timeline

_BAR = "█"
_GAP = "·"


def render_timeline(timeline: Timeline, width: int = 72) -> str:
    """Render one boot as per-category tracks over a shared time axis."""
    if not timeline.events:
        return "(empty timeline)"
    total_ns = timeline.events[-1].end_ns
    if total_ns == 0:
        return "(zero-length timeline)"

    def column(ns: int) -> int:
        return min(width - 1, int(ns / total_ns * width))

    lines = [f"boot timeline — {total_ns / 1e6:.2f} ms total"]
    label_width = max(len(c.value) for c in BootCategory)
    for category in BootCategory:
        track = [_GAP] * width
        busy_ns = 0
        for event in timeline.events:
            if event.category is not category or event.duration_ns == 0:
                continue
            busy_ns += event.duration_ns
            start, end = column(event.start_ns), column(event.end_ns)
            for i in range(start, max(end, start + 1)):
                track[i] = _BAR
        lines.append(
            f"{category.value.ljust(label_width)} |{''.join(track)}| "
            f"{busy_ns / 1e6:8.2f} ms"
        )
    lines.append(
        " " * label_width
        + f"  0{'ms'.rjust(width - 2)}"
    )
    return "\n".join(lines)


def render_step_ranking(timeline: Timeline, top: int = 10) -> str:
    """The ``top`` costliest steps of a boot, largest first."""
    totals = sorted(
        timeline.step_totals_ns().items(), key=lambda kv: -kv[1]
    )[:top]
    if not totals:
        return "(no steps)"
    peak = totals[0][1] or 1
    lines = []
    name_width = max(len(step.value) for step, _ in totals)
    for step, ns in totals:
        bar = "#" * max(1, round(ns / peak * 32))
        lines.append(f"{step.value.ljust(name_width)}  {bar} {ns / 1e6:.3f} ms")
    return "\n".join(lines)
