"""Microarchitectural KASLR-break side channels and their mitigation.

Section 3.1: breaking KASLR "has become a proving ground for emerging
side-channel attacks" — prefetch timing, TLB probing, transient loads —
while mitigations like KAISER/KPTI unmap the kernel from the user address
space and close them.  This module implements the canonical *prefetch
attack* shape against a booted guest:

* the attacker times a prefetch/translation probe per candidate KASLR slot;
* a mapped slot resolves through the page tables (fast), an unmapped slot
  faults down the whole walk (slow);
* Gaussian timing noise forces multi-trial voting;
* with KPTI enabled, kernel mappings are absent from the user-mode address
  space, so every probe is uniformly slow and the attack learns nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.layout_result import LayoutResult
from repro.core.policy import RandomizationPolicy
from repro.errors import TranslationFault
from repro.kernel import layout as kl
from repro.vm.pagetable import PageTableWalker

#: prefetch latency means (ns) for mapped / unmapped kernel addresses
_MAPPED_NS = 28.0
_UNMAPPED_NS = 230.0


@dataclass(frozen=True)
class ProbeReport:
    """Outcome of one prefetch-attack campaign."""

    found_offset: int | None
    probes: int
    slots_scanned: int
    kpti: bool

    @property
    def broke_kaslr(self) -> bool:
        return self.found_offset is not None


def _probe_latency(
    walker: PageTableWalker, vaddr: int, kpti: bool, rng: random.Random, noise: float
) -> float:
    """One timed probe of ``vaddr`` from user context."""
    if kpti:
        mapped = False  # kernel not present in the user page tables
    else:
        try:
            walker.translate(vaddr)
            mapped = True
        except TranslationFault:
            mapped = False
    mean = _MAPPED_NS if mapped else _UNMAPPED_NS
    return rng.gauss(mean, noise * mean)


def prefetch_attack(
    walker: PageTableWalker,
    policy: RandomizationPolicy | None = None,
    kpti: bool = False,
    trials: int = 3,
    noise: float = 0.08,
    seed: int = 0,
) -> ProbeReport:
    """Scan every candidate KASLR slot with timed probes.

    Classification threshold sits midway between the mapped/unmapped
    latency distributions; ``trials`` probes per slot are averaged (the
    voting real attacks use against timing noise).  Scans all slots and
    picks the *lowest-latency* candidate below threshold, as published
    attacks do, rather than stopping at the first hit.
    """
    policy = policy or RandomizationPolicy()
    rng = random.Random(seed)
    threshold = (_MAPPED_NS + _UNMAPPED_NS) / 2
    probes = 0
    best_offset: int | None = None
    best_latency = float("inf")
    offset = policy.min_offset
    slots = 0
    while offset < policy.max_offset:
        vaddr = kl.LINK_VBASE + offset
        samples = [
            _probe_latency(walker, vaddr, kpti, rng, noise) for _ in range(trials)
        ]
        probes += trials
        latency = sum(samples) / trials
        if latency < threshold and latency < best_latency:
            best_latency = latency
            best_offset = offset
        offset += policy.align
        slots += 1
    return ProbeReport(
        found_offset=best_offset, probes=probes, slots_scanned=slots, kpti=kpti
    )


def attack_accuracy(
    walker: PageTableWalker,
    layout: LayoutResult,
    kpti: bool,
    campaigns: int = 5,
    **kwargs,
) -> float:
    """Fraction of attack campaigns that recover the true offset."""
    hits = 0
    for campaign in range(campaigns):
        report = prefetch_attack(walker, kpti=kpti, seed=campaign, **kwargs)
        if report.found_offset == layout.voffset:
            hits += 1
    return hits / campaigns
