"""Empirical randomization-entropy measurement.

Section 4.3 claims in-monitor randomization provides entropy equivalent to
Linux's own: the offset algorithm is the same and the randomness source is
the host pool.  These helpers measure the offsets actually produced over
many boots so tests can check uniformity and coverage empirically.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable

from repro.core.layout_result import LayoutResult


def offset_distribution(layouts: Iterable[LayoutResult]) -> Counter[int]:
    """Histogram of chosen virtual offsets."""
    return Counter(layout.voffset for layout in layouts)


def empirical_entropy_bits(samples: Iterable[int]) -> float:
    """Shannon entropy (bits) of an observed sample distribution.

    A plug-in estimate: with n samples over k equiprobable slots it
    approaches ``log2(k)`` from below as n grows.
    """
    counts = Counter(samples)
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def coverage_fraction(samples: Iterable[int], slot_count: int) -> float:
    """Fraction of the theoretical offset slots actually observed."""
    observed = len(set(samples))
    if slot_count <= 0:
        raise ValueError("slot_count must be positive")
    return observed / slot_count
