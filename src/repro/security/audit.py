"""Live KASLR entropy auditing: is the fleet actually diverse?

The paper's headline trade-off (Sections 4.3 and 6) is that snapshot
restores clone one randomized layout across every instance — the fleet
*looks* randomized per boot but every leaked address stays valid on
every clone.  Nothing in the cumulative metrics watches that property;
this module is the sink that does.

:class:`KaslrAuditor` fingerprints every produced instance's
:class:`~repro.core.layout_result.LayoutResult` (a short digest over the
virtual offset and the FGKASLR move map) and maintains, per production
strategy:

* **distinct-layout fraction** — distinct digests / boots.  Cold boots
  and rebase-on-restore hold ~1.0; plain restore collapses toward
  ``1/pool_size`` (the zygote's single layout, re-served);
* **duplicate detections** — boots whose digest was already live;
* **empirical entropy bits** — Shannon entropy of the observed layout
  distribution, via :func:`repro.security.entropy.empirical_entropy_bits`
  (a fleet of clones reads ~0 bits regardless of per-boot KASLR);
* **address-validity lifetime** — per digest, how long a leaked address
  would have stayed correct: from the digest's first appearance to the
  last instant an instance carrying it was observed alive (the
  :mod:`repro.security.attacks` model's window of opportunity —
  ``touch`` extends it on every lease, completion, and eviction).

The auditor adds zero simulated time (it never touches a clock) and is
feed-order deterministic, so its JSON export is byte-stable for seeded
runs and a run without an auditor is bit-for-bit unchanged.
"""

from __future__ import annotations

import hashlib
import threading
from repro.core.layout_result import LayoutResult
from repro.security.entropy import empirical_entropy_bits

__all__ = ["KaslrAuditor", "layout_digest"]

SCHEMA_VERSION = 1

_NS_PER_MS = 1e6


def layout_digest(layout: LayoutResult) -> str:
    """A short, stable fingerprint of one randomized layout.

    Covers exactly what an attacker's leaked address depends on: the
    KASLR virtual offset and the FGKASLR section move map.  Two boots
    share a digest iff every kernel address resolves identically.
    """
    h = hashlib.sha256()
    h.update(str(layout.voffset).encode())
    for start, size, delta in layout.moved:
        h.update(f"|{start},{size},{delta}".encode())
    return h.hexdigest()[:16]


class _StrategyAudit:
    """Per-strategy accounting (one production strategy's layouts)."""

    __slots__ = ("boots", "duplicates", "digests", "counts")

    def __init__(self) -> None:
        self.boots = 0
        self.duplicates = 0
        #: digest -> [first_seen_ns, last_seen_ns]
        self.digests: dict[str, list[int]] = {}
        #: digest -> boots observed with it (the entropy sample weights)
        self.counts: dict[str, int] = {}


class KaslrAuditor:
    """Fingerprints every boot's layout and keeps live diversity metrics."""

    def __init__(self, telemetry=None) -> None:
        self.telemetry = telemetry
        self._lock = threading.Lock()
        self._strategies: dict[str, _StrategyAudit] = {}

    # -- feeding ---------------------------------------------------------------

    def record(
        self,
        boot_id: str,
        *,
        strategy: str,
        t_ns: int,
        layout: LayoutResult | None = None,
        digest: str | None = None,
    ) -> str:
        """One instance came up at ``t_ns`` carrying ``layout``.

        Accepts either the live :class:`LayoutResult` or a pre-computed
        digest (the serve backend fingerprints at sampling time so the
        event loop stays arithmetic-only).  Returns the digest so
        callers can ``touch`` it later.
        """
        if digest is None:
            if layout is None:
                raise ValueError(f"boot {boot_id!r}: need a layout or a digest")
            digest = layout_digest(layout)
        t = int(t_ns)
        with self._lock:
            audit = self._strategies.setdefault(strategy, _StrategyAudit())
            audit.boots += 1
            duplicate = digest in audit.digests
            if duplicate:
                audit.duplicates += 1
                span = audit.digests[digest]
                span[1] = max(span[1], t)
            else:
                audit.digests[digest] = [t, t]
            audit.counts[digest] = audit.counts.get(digest, 0) + 1
            distinct = len(audit.digests)
            boots = audit.boots
            entropy = empirical_entropy_bits(
                d for d, n in audit.counts.items() for _ in range(n)
            )
        self._export(strategy, boots, distinct, entropy, duplicate)
        return digest

    def touch(self, strategy: str, digest: str, t_ns: int) -> None:
        """An instance carrying ``digest`` was observed alive at ``t_ns``.

        Extends the digest's address-validity lifetime; unknown digests
        are ignored (an instance that predates the auditor).
        """
        with self._lock:
            audit = self._strategies.get(strategy)
            if audit is None:
                return
            span = audit.digests.get(digest)
            if span is not None:
                span[1] = max(span[1], int(t_ns))

    def _export(
        self,
        strategy: str,
        boots: int,
        distinct: int,
        entropy: float,
        duplicate: bool,
    ) -> None:
        if self.telemetry is None:
            return
        registry = self.telemetry.registry
        registry.counter(
            "repro_audit_boots_total",
            help="Boots fingerprinted by the KASLR auditor",
            strategy=strategy,
        ).inc()
        if duplicate:
            registry.counter(
                "repro_audit_duplicate_layouts_total",
                help="Boots that came up with an already-live layout",
                strategy=strategy,
            ).inc()
        registry.gauge(
            "repro_audit_distinct_layout_fraction",
            help="Distinct layout digests / boots (1.0 = fully diverse)",
            strategy=strategy,
        ).set(round(distinct / boots, 6))
        registry.gauge(
            "repro_audit_entropy_bits",
            help="Shannon entropy of the observed layout distribution",
            strategy=strategy,
        ).set(round(entropy, 4))

    # -- reading ---------------------------------------------------------------

    def distinct_fraction(self, strategy: str) -> float:
        with self._lock:
            audit = self._strategies[strategy]
            return len(audit.digests) / audit.boots

    def to_json_dict(self) -> dict:
        """Byte-stable audit report, one entry per strategy."""
        with self._lock:
            strategies = {}
            for name in sorted(self._strategies):
                audit = self._strategies[name]
                lifetimes_ns = [
                    last - first for first, last in audit.digests.values()
                ]
                strategies[name] = {
                    "boots": audit.boots,
                    "distinct_layouts": len(audit.digests),
                    "distinct_fraction": round(
                        len(audit.digests) / audit.boots, 6
                    ),
                    "duplicates": audit.duplicates,
                    "entropy_bits": round(
                        empirical_entropy_bits(
                            d for d, n in audit.counts.items()
                            for _ in range(n)
                        ),
                        4,
                    ),
                    "lifetime_ms": {
                        "mean": round(
                            sum(lifetimes_ns)
                            / len(lifetimes_ns)
                            / _NS_PER_MS,
                            4,
                        ),
                        "max": round(max(lifetimes_ns) / _NS_PER_MS, 4),
                    },
                }
        return {"schema_version": SCHEMA_VERSION, "strategies": strategies}
