"""Information-leak attack simulation.

Models the Section 3.1 argument for FGKASLR: under base KASLR the whole
text shares one offset, so a single leaked code pointer de-randomizes every
ROP gadget; under FGKASLR a leak discloses only the leaked function's
location, so "attackers will not be able to exploit the entire kernel with
a single information leak".

The attacker model: they possess the distributed vmlinux (link-time
addresses of every gadget) and obtain runtime leaks of randomly chosen
kernel code pointers (e.g. from stack/heap disclosure bugs).  A gadget is
*located* once the attacker can compute its runtime virtual address.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.core.layout_result import LayoutResult
from repro.kernel.image import KernelImage
from repro.kernel.manifest import BuildManifest


@dataclass(frozen=True)
class Gadget:
    """One code-reuse gadget: a function and an offset inside it."""

    function: str
    offset: int
    link_vaddr: int


@dataclass
class GadgetCatalog:
    """A deterministic set of gadgets drawn from a kernel's functions."""

    gadgets: list[Gadget] = field(default_factory=list)

    @classmethod
    def from_kernel(
        cls, kernel: KernelImage, n_gadgets: int = 200, seed: int = 0
    ) -> "GadgetCatalog":
        rng = random.Random(seed)
        manifest = kernel.manifest
        gadgets = []
        for _ in range(n_gadgets):
            func = rng.choice(manifest.functions)
            offset = rng.randrange(0, max(func.size - 2, 1))
            gadgets.append(
                Gadget(
                    function=func.name,
                    offset=offset,
                    link_vaddr=func.link_vaddr + offset,
                )
            )
        return cls(gadgets=gadgets)


@dataclass(frozen=True)
class LeakAttackResult:
    """Outcome of a leak campaign against one booted kernel."""

    n_leaks: int
    n_gadgets: int
    located: int
    #: fraction of the gadget catalog whose runtime address is now known
    located_fraction: float
    #: whether the base virtual offset was disclosed
    base_offset_known: bool


def _leaked_functions(
    manifest: BuildManifest, n_leaks: int, rng: random.Random
) -> list[str]:
    pool = [f.name for f in manifest.functions]
    return [rng.choice(pool) for _ in range(n_leaks)]


def simulate_leak_attack(
    kernel: KernelImage,
    layout: LayoutResult,
    catalog: GadgetCatalog,
    n_leaks: int = 1,
    seed: int = 0,
) -> LeakAttackResult:
    """Leak ``n_leaks`` random kernel code pointers and count located gadgets.

    Each leak gives the attacker ``(function identity, runtime address)``
    — the strongest realistic read primitive short of arbitrary read.  With
    an un-shuffled kernel one leak yields the global offset; with FGKASLR
    the attacker learns the displacement of the leaked function only (and,
    because the base offset becomes known too, the location of everything
    that FGKASLR did *not* move — the small boot/entry text).
    """
    manifest = kernel.manifest
    rng = random.Random(seed)
    base_offset_known = False
    disclosed: set[str] = set()
    for name in _leaked_functions(manifest, n_leaks, rng):
        disclosed.add(name)
        # final = link + displacement + voffset; for an unmoved function the
        # displacement is zero, so any leak reveals voffset. For a moved one
        # the attacker still learns (displacement + voffset) which pins only
        # this function; voffset itself leaks because the attacker can
        # compare against the unmoved entry text on a second leak — we grant
        # it immediately, which is conservative (favors the attacker).
        base_offset_known = True
    located = 0
    for gadget in catalog.gadgets:
        func = manifest.function(gadget.function)
        moved = layout.displacement_for(func.link_vaddr) != 0
        if gadget.function in disclosed:
            located += 1
        elif not moved and base_offset_known:
            # Base KASLR only: the global offset places every gadget.
            located += 1
    return LeakAttackResult(
        n_leaks=n_leaks,
        n_gadgets=len(catalog.gadgets),
        located=located,
        located_fraction=located / len(catalog.gadgets) if catalog.gadgets else 0.0,
        base_offset_known=base_offset_known,
    )


def expected_brute_force_guesses(entropy_bits: float) -> float:
    """Expected number of guesses to brute-force an offset (uniform).

    Returns ``inf`` beyond float range (FGKASLR permutation entropy is
    hundreds of thousands of bits).
    """
    if entropy_bits > 1020:
        return math.inf
    return 2.0 ** (entropy_bits - 1)
