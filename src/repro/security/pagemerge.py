"""Content-based page merging (KSM) across co-resident microVMs.

Section 6: fine-grained randomization nullifies page-sharing benefits
because per-VM layouts diverge; with in-monitor randomization the *host*
controls the seed and can pin one randomization per VM group to recover
density.  :func:`merge_report` measures exactly that: hash every resident
guest page across a fleet and count how many copies a same-content merge
would reclaim.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.vm.memory import GuestMemory

PAGE_SIZE = 4096


@dataclass(frozen=True)
class PageMergeReport:
    """Fleet-wide page dedup outcome."""

    n_vms: int
    total_pages: int
    distinct_pages: int
    zero_pages: int

    @property
    def reclaimed_pages(self) -> int:
        """Copies a same-content merge collapses (incl. zero pages)."""
        return self.total_pages - self.distinct_pages

    @property
    def reclaimed_fraction(self) -> float:
        if self.total_pages == 0:
            return 0.0
        return self.reclaimed_pages / self.total_pages

    @property
    def reclaimed_nonzero_fraction(self) -> float:
        """Reclaim fraction among pages with actual content."""
        nonzero_total = self.total_pages - self.zero_pages
        if nonzero_total <= 0:
            return 0.0
        distinct_nonzero = self.distinct_pages - (1 if self.zero_pages else 0)
        return (nonzero_total - distinct_nonzero) / nonzero_total


_ZERO_DIGEST = hashlib.blake2b(bytes(PAGE_SIZE), digest_size=16).digest()


def merge_report(memories: Iterable[GuestMemory]) -> PageMergeReport:
    """Hash every resident page of every VM and count mergeable copies."""
    digests: Counter[bytes] = Counter()
    n_vms = 0
    zero_pages = 0
    for memory in memories:
        n_vms += 1
        for _paddr, page in memory.iter_resident_pages(PAGE_SIZE):
            digest = hashlib.blake2b(page, digest_size=16).digest()
            digests[digest] += 1
            if digest == _ZERO_DIGEST:
                zero_pages += 1
    return PageMergeReport(
        n_vms=n_vms,
        total_pages=sum(digests.values()),
        distinct_pages=len(digests),
        zero_pages=zero_pages,
    )
