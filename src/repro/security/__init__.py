"""Security analyses: entropy, information-leak value, memory density.

Supports the paper's security arguments quantitatively: Section 4.3's
entropy-equivalence claim, Section 3.1's value-of-a-leak argument for
FGKASLR, and Section 6's page-merging/memory-density discussion.
"""

from repro.security.attacks import GadgetCatalog, LeakAttackResult, simulate_leak_attack
from repro.security.audit import KaslrAuditor, layout_digest
from repro.security.entropy import empirical_entropy_bits, offset_distribution
from repro.security.pagemerge import PageMergeReport, merge_report

__all__ = [
    "GadgetCatalog",
    "KaslrAuditor",
    "LeakAttackResult",
    "PageMergeReport",
    "empirical_entropy_bits",
    "layout_digest",
    "merge_report",
    "offset_distribution",
    "simulate_leak_attack",
]
