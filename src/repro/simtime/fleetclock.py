"""Aggregate wall-clock model for overlapping boots.

Section 6 measures *instantiation rate*: how many microVMs a host can bring
up per second when boots overlap.  Individual boots each run on a private
:class:`~repro.simtime.clock.SimClock`; this module models what a host with
``workers`` boot slots makes of those per-boot durations.

The model is earliest-free-worker list scheduling: boots are admitted in a
fixed order, each starting on the worker that frees up first.  Admission
order is chosen by the caller (fleet index order), never by Python thread
scheduling, so the makespan is deterministic for a given set of durations.

Two admission shapes share the machinery:

* **batch** (:meth:`FleetWallClock.schedule`) — every boot is ready at
  time zero and the fleet races to drain them (the Section 6 makespan
  experiment);
* **open-loop** (:meth:`FleetWallClock.schedule_at`) — work becomes
  ready at caller-chosen instants (a serve control plane provisioning
  instances against live arrivals), so workers may sit idle between
  admissions and the batch lower bound ``makespan >= serial / workers``
  no longer applies.  ``busy_fraction`` reports the resulting
  utilization over any observation horizon.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass


@dataclass(frozen=True)
class BootWindow:
    """One admitted boot: the worker slot it ran on and its wall window."""

    worker: int
    start_ns: int
    end_ns: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


class FleetWallClock:
    """Earliest-free-worker makespan over independent boot durations.

    Invariants (the fleet property tests rely on them):

    * ``makespan_ns <= serial_ns`` — overlap can only help;
    * ``makespan_ns >= serial_ns / workers`` — no superlinear speedup
      (batch admission via :meth:`schedule` only; open-loop admission
      via :meth:`schedule_at` can leave workers idle between arrivals);
    * ``makespan_ns >= max(admitted durations)`` — the longest boot is a
      lower bound no amount of parallelism removes.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"fleet needs at least one worker, got {workers}")
        self.workers = workers
        # (free-at, worker index) — ties break toward the lowest worker,
        # which keeps scheduling deterministic; already a valid heap
        self._free: list[tuple[int, int]] = [(0, i) for i in range(workers)]
        self._serial_ns = 0
        self._makespan_ns = 0
        self.admitted = 0

    def schedule(self, duration_ns: float) -> BootWindow:
        """Schedule one boot; returns its worker slot and wall window."""
        return self.schedule_at(0, duration_ns)

    def schedule_at(self, ready_ns: int, duration_ns: float) -> BootWindow:
        """Schedule work that becomes ready at ``ready_ns`` (open loop).

        The work starts on the earliest-free worker, but never before it
        is ready: ``start = max(worker free-at, ready_ns)``.  With
        ``ready_ns=0`` this degenerates to batch admission.  Admission
        order remains the caller's responsibility, so results stay a pure
        function of the (ready, duration) sequence.
        """
        ns = int(round(duration_ns))
        if ns < 0:
            raise ValueError(f"cannot admit negative duration: {duration_ns}")
        ready = int(ready_ns)
        if ready < 0:
            raise ValueError(f"cannot admit work ready before t=0: {ready_ns}")
        free_at, worker = heapq.heappop(self._free)
        start = max(free_at, ready)
        end = start + ns
        heapq.heappush(self._free, (end, worker))
        self._serial_ns += ns
        self._makespan_ns = max(self._makespan_ns, end)
        self.admitted += 1
        return BootWindow(worker=worker, start_ns=start, end_ns=end)

    def admit(self, duration_ns: float) -> tuple[int, int]:
        """Schedule one boot; returns its ``(start_ns, end_ns)`` window."""
        window = self.schedule(duration_ns)
        return window.start_ns, window.end_ns

    @property
    def serial_ns(self) -> int:
        """Total work: what the fleet would cost booted back-to-back."""
        return self._serial_ns

    @property
    def makespan_ns(self) -> int:
        """Wall-clock span from first admission to last completion."""
        return self._makespan_ns

    @property
    def serial_ms(self) -> float:
        return self._serial_ns / 1e6

    @property
    def makespan_ms(self) -> float:
        return self._makespan_ns / 1e6

    @property
    def speedup(self) -> float:
        """serial / makespan; 1.0 for an empty or single-worker fleet."""
        return self._serial_ns / self._makespan_ns if self._makespan_ns else 1.0

    def busy_fraction(self, horizon_ns: int | None = None) -> float:
        """Worker utilization over ``horizon_ns`` (default: the makespan).

        Open-loop admission leaves workers idle between arrivals; this is
        the serve report's provisioner-utilization metric.  0.0 for an
        empty schedule or a zero horizon.
        """
        horizon = self._makespan_ns if horizon_ns is None else int(horizon_ns)
        if horizon <= 0:
            return 0.0
        return min(1.0, self._serial_ns / (horizon * self.workers))
