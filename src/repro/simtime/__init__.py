"""Deterministic simulated-time substrate.

The reproduction never measures Python wall-clock time: every operation a
real monitor/guest would perform (disk reads, decompression, memcpy,
relocation handling, ELF parsing, ...) charges simulated nanoseconds to a
:class:`~repro.simtime.clock.SimClock` according to a calibrated
:class:`~repro.simtime.costs.CostModel`.  This keeps benchmark results
deterministic, independent of the host machine, and faithful to the paper's
i7-4790 testbed in *shape*.
"""

from repro.simtime.clock import SimClock
from repro.simtime.costs import CostModel, JitterModel
from repro.simtime.fleetclock import BootWindow, FleetWallClock
from repro.simtime.trace import BootCategory, BootStep, Timeline, TraceEvent

__all__ = [
    "BootCategory",
    "BootStep",
    "BootWindow",
    "CostModel",
    "FleetWallClock",
    "JitterModel",
    "SimClock",
    "Timeline",
    "TraceEvent",
]
