"""Calibrated operation costs.

Every constant in :class:`CostModel` is expressed at *paper scale* (the
authors' i7-4790 @ 3.6 GHz, DDR3-1600, SATA SSD with 560 MB/s reads —
Section 5.1).  Because the synthetic kernels are built at ``1/scale`` of the
paper's image sizes (see DESIGN.md §7), all size- and count-proportional
charges are multiplied by ``scale`` so that reported simulated times
correspond to full-size kernels.  Constant overheads (VMM startup, guest
entry, ...) are scale-independent.

The throughput and per-entry constants were calibrated once against the
paper's reported aggregates (Figures 4, 5, 6, 9 and the Section 5.2 prose)
and are never tuned per-experiment; all figures are regenerated from this
single model.
"""

from __future__ import annotations

import math
import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.telemetry.profiler import CostProfiler

MIB = 1024 * 1024
NS_PER_S = 1_000_000_000

#: Every charge kind a :class:`CostModel` method can report through its
#: :meth:`CostModel.charge` chokepoint.  The profiler additionally emits
#: dynamic ``uncosted.<step>`` kinds for clock charges that no cost method
#: produced (milestone writes, overrides fed raw constants, ...), so the
#: attribution always covers 100% of simulated time.
CHARGE_KINDS: tuple[str, ...] = (
    "artifact_cache_lookup",
    "decompress",
    "disk_read",
    "elf_parse",
    "kallsyms_fixup",
    "kernel_init",
    "kernel_mem_init",
    "loader_heap_zero",
    "loader_init",
    "loader_jump",
    "loader_memcpy",
    "loader_pagetable",
    "memcpy",
    "memzero",
    "reloc_apply",
    "reloc_search",
    "rng",
    "segment_load",
    "shuffle",
    "snapshot_capture",
    "snapshot_restore",
    "table_fixup",
    "vmm_boot_params",
    "vmm_guest_entry",
    "vmm_pagetable",
    "vmm_startup",
)


def _ns_for_throughput(nbytes: int, mib_per_s: float) -> float:
    """Nanoseconds to move ``nbytes`` at ``mib_per_s`` MiB/s."""
    if nbytes < 0:
        raise ValueError(f"negative byte count: {nbytes}")
    if mib_per_s <= 0:
        raise ValueError(f"throughput must be positive: {mib_per_s}")
    return nbytes / (mib_per_s * MIB) * NS_PER_S


@dataclass
class JitterModel:
    """Multiplicative run-to-run noise.

    The paper reports min/max error bars over 100 boots; this model supplies
    the equivalent spread deterministically.  Each charge is multiplied by a
    factor drawn from a clipped Gaussian around 1.0.  A ``sigma`` of 0
    disables noise entirely (the default for unit tests).
    """

    sigma: float = 0.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def reseed(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def factor(self) -> float:
        if self.sigma <= 0:
            return 1.0
        # Clip at 4 sigma so a single unlucky draw cannot dominate a boot.
        draw = self._rng.gauss(0.0, self.sigma)
        draw = max(-4 * self.sigma, min(4 * self.sigma, draw))
        return 1.0 + draw


# Decompression throughputs in MiB/s of *output* bytes, calibrated to the
# Figure 3 compression bakeoff (LZ4 fastest, bzip2/lzma slowest).
DEFAULT_DECOMPRESS_MIB_S: dict[str, float] = {
    "none": 3_200.0,  # a copy to the run location, at early-boot copy speed
    "lz4": 2_400.0,
    "lzo": 1_600.0,
    "gzip": 330.0,
    "bzip2": 110.0,
    "lzma": 75.0,
    "xz": 88.0,
}


@dataclass
class CostModel:
    """Single source of truth for simulated operation costs."""

    #: Size divisor between paper-scale kernels and the bytes we actually
    #: build.  Size/count-proportional charges multiply by this.
    scale: int = 16

    jitter: JitterModel = field(default_factory=JitterModel)

    # --- host I/O ----------------------------------------------------------
    ssd_read_mib_s: float = 560.0
    page_cache_read_mib_s: float = 9_000.0
    io_request_overhead_ns: float = 120_000.0  # per file open/read request

    # --- memory ------------------------------------------------------------
    memcpy_mib_s: float = 11_000.0
    memzero_mib_s: float = 14_000.0
    #: bulk copies inside the bootstrap loader run well below streaming
    #: speed (early identity-mapped environment, simple copy loops) — this
    #: is what makes uncompressed ("none") bzImages the slowest method in
    #: Figure 6: they move the full image twice at this rate
    loader_memcpy_mib_s: float = 3_200.0

    # --- decompression -----------------------------------------------------
    decompress_mib_s: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_DECOMPRESS_MIB_S)
    )

    # --- ELF parsing -------------------------------------------------------
    elf_header_parse_ns: float = 2_000.0
    elf_section_parse_ns: float = 450.0  # per section header handled
    elf_symbol_parse_ns: float = 60.0  # per symbol table entry scanned

    # --- randomization -----------------------------------------------------
    #: host getrandom()-style draw (in-monitor path, Section 4.3)
    host_rng_draw_ns: float = 700.0
    #: in-guest rdrand/rdtsc entropy gathering (bootstrap loader path)
    guest_rng_draw_ns: float = 9_000.0
    #: applying one relocation entry (add/subtract + bounds check)
    reloc_apply_ns: float = 18.0
    #: FGKASLR per-relocation binary search over shuffled sections is
    #: ``reloc_search_factor_ns * log2(n_sections)`` (Section 3.2)
    reloc_search_factor_ns: float = 14.0
    #: Fisher-Yates pick + section bookkeeping, per shuffled section
    shuffle_section_ns: float = 500.0
    #: per-entry fixup of the exception table / ORC unwind table
    table_fixup_entry_ns: float = 120.0
    #: per-symbol kallsyms address rewrite + re-sort share (Section 4.3:
    #: "fixing up /proc/kallsyms amounts to 22% of overall boot times")
    kallsyms_fixup_symbol_ns: float = 1_100.0
    #: probing the monitor's content-addressed boot-artifact cache (digest
    #: compare + pin); replaces the full parse on the fleet hot path
    artifact_cache_lookup_ns: float = 1_800.0

    #: per-PT_LOAD-segment bookkeeping when the monitor loads straight from
    #: the page cache into guest memory (the byte copy itself is the
    #: storage-read charge; Section 5.2 — "reads the kernel image one
    #: segment at a time directly into guest memory")
    segment_load_overhead_ns: float = 25_000.0

    # --- monitor constants ---------------------------------------------------
    vmm_startup_ns: float = 1_400_000.0  # Firecracker process + API + KVM init
    vmm_boot_params_ns: float = 60_000.0
    vmm_pagetable_base_ns: float = 40_000.0
    vmm_pagetable_per_mib_ns: float = 90.0
    vmm_guest_entry_ns: float = 110_000.0

    # --- bootstrap loader constants -----------------------------------------
    loader_init_ns: float = 2_600_000.0  # stack/GDT/IDT bring-up
    loader_bss_zero_bytes: int = 1 * MIB  # loader's own .bss (paper scale)
    loader_pagetable_ns: float = 2_200_000.0  # identity + kernel map, early env
    loader_jump_ns: float = 15_000.0
    #: early-boot memory zeroing runs far below streaming-memset speed (no
    #: warmed caches, primitive memset) — Section 5.2 attributes the
    #: compression-none Bootstrap Setup gap to "allocating and zeroing" the
    #: boot heap and the loader's own structures
    loader_zero_slowdown: float = 8.0
    #: in-guest relocation handling vs the monitor's (Section 4.3 credits
    #: the monitor's mature host libraries and warm execution environment)
    loader_reloc_slowdown: float = 3.0

    # --- snapshot / restore ---------------------------------------------------
    #: serializing resident guest pages into a snapshot
    snapshot_capture_mib_s: float = 4_500.0
    #: restore constant (open snapshot, rebuild VM shell, CoW-map memory)
    snapshot_restore_base_ns: float = 2_500_000.0
    #: per-MiB of resident snapshot state mapped at restore
    snapshot_restore_per_mib_ns: float = 9_000.0

    # --- guest kernel boot ----------------------------------------------------
    #: per-MiB of guest RAM initialized by the early kernel (memblock,
    #: struct-page init); drives the Figure 10 linear trend.
    kernel_mem_init_per_mib_ns: float = 12_000.0

    #: attribution sink (see :mod:`repro.telemetry.profiler`); per-boot
    #: model clones inherit it through :func:`dataclasses.replace`
    profiler: "CostProfiler | None" = field(
        default=None, repr=False, compare=False
    )
    #: >0 while inside a composite cost method, so inner helper calls
    #: (e.g. the memcpy share of ``shuffle_ns``) are not double-reported
    _depth: int = field(default=0, init=False, repr=False, compare=False)

    # -- helpers -------------------------------------------------------------

    def _scaled(self, ns: float) -> float:
        return ns * self.scale * self.jitter.factor()

    def _const(self, ns: float) -> float:
        return ns * self.jitter.factor()

    def charge(self, kind: str, ns: float) -> float:
        """The cost chokepoint: report ``ns`` under ``kind`` and return it.

        Every public cost method funnels its result through here, so an
        attached profiler sees one ``(kind, ns)`` record per cost site; the
        clock commit (:meth:`repro.simtime.clock.SimClock.charge`) then
        attributes the rounded nanoseconds.  No jitter is drawn here — the
        chokepoint observes values, it never changes them.
        """
        if self.profiler is not None and self._depth == 0:
            self.profiler.record_cost(kind, ns)
        return ns

    @contextmanager
    def _nested(self) -> Iterator[None]:
        """Suppress reporting of helper calls inside a composite cost."""
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1

    # --- host I/O ------------------------------------------------------------

    def disk_read_ns(self, nbytes: int, cached: bool) -> float:
        """Read ``nbytes`` of a kernel image from storage (or page cache)."""
        rate = self.page_cache_read_mib_s if cached else self.ssd_read_mib_s
        ns = self._scaled(_ns_for_throughput(nbytes, rate)) + self._const(
            self.io_request_overhead_ns
        )
        return self.charge("disk_read", ns)

    # --- memory ---------------------------------------------------------------

    def memcpy_ns(self, nbytes: int) -> float:
        return self.charge(
            "memcpy", self._scaled(_ns_for_throughput(nbytes, self.memcpy_mib_s))
        )

    def loader_memcpy_ns(self, nbytes: int) -> float:
        """Bulk byte movement performed by the bootstrap loader."""
        return self.charge(
            "loader_memcpy",
            self._scaled(_ns_for_throughput(nbytes, self.loader_memcpy_mib_s)),
        )

    def memzero_ns(self, nbytes: int) -> float:
        return self.charge(
            "memzero", self._scaled(_ns_for_throughput(nbytes, self.memzero_mib_s))
        )

    # --- decompression ----------------------------------------------------------

    def decompress_ns(self, codec: str, out_bytes: int) -> float:
        """Decompress to ``out_bytes`` of output with ``codec``."""
        try:
            rate = self.decompress_mib_s[codec]
        except KeyError:
            raise KeyError(
                f"no decompression throughput calibrated for codec {codec!r}"
            ) from None
        return self.charge(
            "decompress", self._scaled(_ns_for_throughput(out_bytes, rate))
        )

    # --- ELF ---------------------------------------------------------------------

    def elf_parse_ns(self, n_sections: int, n_symbols: int = 0) -> float:
        ns = self._const(self.elf_header_parse_ns) + self._scaled(
            n_sections * self.elf_section_parse_ns
            + n_symbols * self.elf_symbol_parse_ns
        )
        return self.charge("elf_parse", ns)

    # --- randomization --------------------------------------------------------

    def rng_ns(self, draws: int, in_guest: bool) -> float:
        per = self.guest_rng_draw_ns if in_guest else self.host_rng_draw_ns
        return self.charge("rng", self._const(draws * per))

    def reloc_apply_batch_ns(self, n_entries: int, in_guest: bool = False) -> float:
        factor = self.loader_reloc_slowdown if in_guest else 1.0
        return self.charge(
            "reloc_apply", self._scaled(n_entries * self.reloc_apply_ns * factor)
        )

    def reloc_search_batch_ns(self, n_entries: int, n_sections: int) -> float:
        """Binary-search cost for FGKASLR relocation handling."""
        depth = math.log2(n_sections + 1) if n_sections > 0 else 0.0
        return self.charge(
            "reloc_search",
            self._scaled(n_entries * self.reloc_search_factor_ns * depth),
        )

    def shuffle_ns(self, n_sections: int, text_bytes: int) -> float:
        """Shuffle function sections and repack them contiguously."""
        with self._nested():
            ns = self._scaled(
                n_sections * self.shuffle_section_ns
            ) + self.memcpy_ns(text_bytes)
        return self.charge("shuffle", ns)

    def table_fixup_ns(self, n_entries: int) -> float:
        return self.charge(
            "table_fixup", self._scaled(n_entries * self.table_fixup_entry_ns)
        )

    def kallsyms_fixup_ns(self, n_symbols: int) -> float:
        return self.charge(
            "kallsyms_fixup",
            self._scaled(n_symbols * self.kallsyms_fixup_symbol_ns),
        )

    def artifact_cache_lookup(self) -> float:
        """One boot-artifact cache probe (constant; hit path only)."""
        return self.charge(
            "artifact_cache_lookup", self._const(self.artifact_cache_lookup_ns)
        )

    # --- monitor ------------------------------------------------------------------

    def vmm_startup(self) -> float:
        return self.charge("vmm_startup", self._const(self.vmm_startup_ns))

    def vmm_boot_params(self) -> float:
        return self.charge("vmm_boot_params", self._const(self.vmm_boot_params_ns))

    def vmm_pagetable_ns(self, mapped_bytes: int) -> float:
        mib = mapped_bytes / MIB * self.scale
        return self.charge(
            "vmm_pagetable",
            self._const(
                self.vmm_pagetable_base_ns + mib * self.vmm_pagetable_per_mib_ns
            ),
        )

    def vmm_guest_entry(self) -> float:
        return self.charge("vmm_guest_entry", self._const(self.vmm_guest_entry_ns))

    # --- bootstrap loader ------------------------------------------------------

    def loader_init(self) -> float:
        with self._nested():
            bss_zero = (
                self.memzero_ns(self.loader_bss_zero_bytes // self.scale)
                * self.loader_zero_slowdown
            )
            ns = self._const(self.loader_init_ns) + bss_zero
        return self.charge("loader_init", ns)

    def loader_pagetable(self) -> float:
        return self.charge("loader_pagetable", self._const(self.loader_pagetable_ns))

    def loader_heap_zero_ns(self, heap_bytes: int) -> float:
        with self._nested():
            ns = self.memzero_ns(heap_bytes) * self.loader_zero_slowdown
        return self.charge("loader_heap_zero", ns)

    def loader_jump(self) -> float:
        return self.charge("loader_jump", self._const(self.loader_jump_ns))

    # --- segment loading --------------------------------------------------------

    def segment_load_ns(self, n_segments: int) -> float:
        """Per-PT_LOAD-segment bookkeeping (deliberately jitter-free: the
        constant models fixed syscall/bookkeeping work, and the seed
        behaviour charged the raw attribute)."""
        return self.charge(
            "segment_load", n_segments * self.segment_load_overhead_ns
        )

    # --- snapshot / restore --------------------------------------------------

    def snapshot_capture_ns(self, resident_bytes: int) -> float:
        return self.charge(
            "snapshot_capture",
            self._scaled(
                _ns_for_throughput(resident_bytes, self.snapshot_capture_mib_s)
            ),
        )

    def snapshot_restore_ns(self, resident_bytes: int) -> float:
        mib = resident_bytes / MIB * self.scale
        return self.charge(
            "snapshot_restore",
            self._const(
                self.snapshot_restore_base_ns + mib * self.snapshot_restore_per_mib_ns
            ),
        )

    # --- guest kernel ------------------------------------------------------------

    def kernel_mem_init_ns(self, mem_mib: int) -> float:
        """Early-kernel memory init (memblock, struct-page) for ``mem_mib``."""
        return self.charge(
            "kernel_mem_init",
            self._const(mem_mib * self.kernel_mem_init_per_mib_ns),
        )

    def kernel_init_ns(self, base_ms: float) -> float:
        """The config-dependent remainder of the guest kernel's own boot.

        ``base_ms`` comes from the kernel config (it depends only on how
        much subsystem bring-up the config compiles in, not on
        randomization — Section 5.1 notes Linux Boot varies at most 4%
        across variants).
        """
        return self.charge("kernel_init", self._const(base_ms * 1e6))

    def kernel_boot_ns(self, base_ms: float, mem_mib: int) -> tuple[float, float]:
        """Compat wrapper: (memory-init, remaining-init) in one call.

        Draw order matches the split methods (memory first), so seeded
        jitter streams are unchanged either way.
        """
        return self.kernel_mem_init_ns(mem_mib), self.kernel_init_ns(base_ms)
