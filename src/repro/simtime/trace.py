"""Boot timeline traces.

The paper instruments boots with ``perf`` tracepoints (port-I/O writes from
the guest) and buckets time into four categories: *In-Monitor*, *Bootstrap
Setup*, *Decompression*, and *Linux Boot* (Section 5.1).  Figure 5
additionally breaks the bootstrap loader down into individual steps.  This
module provides the equivalent event record: every simulated charge lands in
a :class:`Timeline` with both a coarse :class:`BootCategory` and a fine
:class:`BootStep`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator


class BootCategory(enum.Enum):
    """Coarse boot-time buckets used throughout the paper's figures."""

    IN_MONITOR = "in_monitor"
    BOOTSTRAP_SETUP = "bootstrap_setup"
    DECOMPRESSION = "decompression"
    LINUX_BOOT = "linux_boot"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class BootStep(enum.Enum):
    """Fine-grained steps, used for the Figure 5 microbenchmarks.

    Steps prefixed ``MONITOR_`` run in the VMM process; steps prefixed
    ``LOADER_`` run inside the guest's bootstrap loader; ``KERNEL_`` steps
    run in the decompressed kernel proper.
    """

    # --- monitor side -----------------------------------------------------
    MONITOR_STARTUP = "monitor_startup"
    MONITOR_IMAGE_READ = "monitor_image_read"
    MONITOR_ELF_PARSE = "monitor_elf_parse"
    MONITOR_SEGMENT_LOAD = "monitor_segment_load"
    MONITOR_RNG = "monitor_rng"
    MONITOR_SHUFFLE = "monitor_shuffle"
    MONITOR_RELOCATE = "monitor_relocate"
    MONITOR_TABLE_FIXUP = "monitor_table_fixup"
    MONITOR_BOOT_PARAMS = "monitor_boot_params"
    MONITOR_PAGETABLE = "monitor_pagetable"
    MONITOR_GUEST_ENTRY = "monitor_guest_entry"
    # --- bootstrap loader side --------------------------------------------
    LOADER_INIT = "loader_init"
    LOADER_HEAP_ZERO = "loader_heap_zero"
    LOADER_COPY_KERNEL = "loader_copy_kernel"
    LOADER_DECOMPRESS = "loader_decompress"
    LOADER_ELF_PARSE = "loader_elf_parse"
    LOADER_SEGMENT_LOAD = "loader_segment_load"
    LOADER_RNG = "loader_rng"
    LOADER_SHUFFLE = "loader_shuffle"
    LOADER_RELOCATE = "loader_relocate"
    LOADER_TABLE_FIXUP = "loader_table_fixup"
    LOADER_JUMP = "loader_jump"
    # --- kernel side -------------------------------------------------------
    KERNEL_INIT = "kernel_init"
    KERNEL_MEM_INIT = "kernel_mem_init"
    KERNEL_RUN_INIT = "kernel_run_init"
    #: deferred kallsyms fixup triggered by the first /proc/kallsyms read
    KERNEL_KALLSYMS_FIXUP = "kernel_kallsyms_fixup"
    #: insmod: loading + linking a kernel module at runtime
    KERNEL_MODULE_LOAD = "kernel_module_load"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class StageSpan:
    """One pipeline stage's begin/end window on the simulated clock.

    Emitted by :class:`~repro.pipeline.BootPipeline` around every stage it
    executes.  Spans sit *above* :class:`TraceEvent`: a span covers every
    fine-grained charge the stage made, and carries the attribution the
    per-stage reports need — the executing principal, and whether a cache
    served the stage.
    """

    #: stage name (see :mod:`repro.pipeline.stages`)
    name: str
    #: coarse stage family: "monitor_setup", "image_read", "prepare",
    #: "randomize", "bootstrap", "decompression", "vm_setup",
    #: "guest_entry", "linux_boot", "restore", "rebase"
    category: str
    #: who executed the stage: "monitor", "guest", or "kernel"
    principal: str
    start_ns: int
    end_ns: int
    #: True/False when a cache answered/missed; None when not applicable
    cache_hit: bool | None = None
    detail: str = ""

    @property
    def charged_ns(self) -> int:
        """Simulated nanoseconds charged while the stage ran."""
        return self.end_ns - self.start_ns

    @property
    def charged_ms(self) -> float:
        return self.charged_ns / 1e6

    def to_json(self) -> dict:
        return {
            "stage": self.name,
            "category": self.category,
            "principal": self.principal,
            "start_ms": self.start_ns / 1e6,
            "charged_ms": self.charged_ms,
            "cache_hit": self.cache_hit,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class TraceEvent:
    """One charged operation on the simulated clock."""

    start_ns: int
    duration_ns: int
    category: BootCategory
    step: BootStep
    label: str = ""

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns


@dataclass
class Timeline:
    """An append-only sequence of :class:`TraceEvent` for one boot.

    Alongside the fine-grained events, a timeline records the
    :class:`StageSpan` windows of the boot pipeline that produced them, so
    reports can present both views over one source of truth.
    """

    events: list[TraceEvent] = field(default_factory=list)
    spans: list[StageSpan] = field(default_factory=list)

    def append(self, event: TraceEvent) -> None:
        if self.events and event.start_ns < self.events[-1].end_ns:
            raise ValueError(
                "trace events must be appended in simulated-time order: "
                f"{event.start_ns} < {self.events[-1].end_ns}"
            )
        self.events.append(event)

    def add_span(self, span: StageSpan) -> None:
        """Record a pipeline-stage window; spans must not run backwards."""
        if span.end_ns < span.start_ns:
            raise ValueError(
                f"stage span {span.name!r} ends before it starts: "
                f"{span.end_ns} < {span.start_ns}"
            )
        if self.spans and span.start_ns < self.spans[-1].end_ns:
            raise ValueError(
                "stage spans must be appended in simulated-time order: "
                f"{span.start_ns} < {self.spans[-1].end_ns}"
            )
        self.spans.append(span)

    def span_totals_ns(self) -> dict[str, int]:
        """Charged ns per stage name, in first-run order."""
        totals: dict[str, int] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0) + span.charged_ns
        return totals

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def total_ns(self) -> int:
        return sum(e.duration_ns for e in self.events)

    def category_totals_ns(self) -> dict[BootCategory, int]:
        """Per-category totals; every category is present (0 if unused)."""
        totals = {category: 0 for category in BootCategory}
        for event in self.events:
            totals[event.category] += event.duration_ns
        return totals

    def step_totals_ns(self) -> dict[BootStep, int]:
        """Per-step totals, only for steps that actually occurred."""
        totals: dict[BootStep, int] = {}
        for event in self.events:
            totals[event.step] = totals.get(event.step, 0) + event.duration_ns
        return totals

    def category_ns(self, category: BootCategory) -> int:
        return sum(e.duration_ns for e in self.events if e.category is category)

    def step_ns(self, step: BootStep) -> int:
        return sum(e.duration_ns for e in self.events if e.step is step)

    def filtered(self, steps: Iterable[BootStep]) -> "Timeline":
        """A new timeline holding only events whose step is in ``steps``.

        Stage spans are carried over too: the filtered timeline keeps
        every span whose window overlaps at least one kept event, so
        stage attribution survives filtering (it used to be silently
        dropped).
        """
        wanted = set(steps)
        picked = Timeline()
        picked.events = [e for e in self.events if e.step in wanted]
        picked.spans = [
            span
            for span in self.spans
            if any(_window_overlaps(span, event) for event in picked.events)
        ]
        return picked


def _window_overlaps(span: StageSpan, event: TraceEvent) -> bool:
    """Half-open window overlap; zero-width windows count by containment."""
    if event.start_ns == event.end_ns:
        return span.start_ns <= event.start_ns <= span.end_ns
    if span.start_ns == span.end_ns:
        return event.start_ns <= span.start_ns <= event.end_ns
    return event.start_ns < span.end_ns and span.start_ns < event.end_ns
