"""The simulated clock.

A :class:`SimClock` is the single source of time for one boot.  Subsystems
charge durations (computed by :class:`~repro.simtime.costs.CostModel`) with
a category and step, and the clock records them on a
:class:`~repro.simtime.trace.Timeline` while advancing ``now_ns``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.simtime.trace import BootCategory, BootStep, Timeline, TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.telemetry.profiler import CostProfiler


class SimClock:
    """Monotonic simulated clock with per-boot trace recording."""

    def __init__(self, start_ns: int = 0) -> None:
        self._now_ns = int(start_ns)
        self.timeline = Timeline()
        #: attribution sink; the monitor attaches the boot's profiler so
        #: every committed charge is apportioned (see telemetry.profiler)
        self.profiler: "CostProfiler | None" = None

    @property
    def now_ns(self) -> int:
        return self._now_ns

    @property
    def now_ms(self) -> float:
        return self._now_ns / 1e6

    def charge(
        self,
        duration_ns: float,
        category: BootCategory,
        step: BootStep,
        label: str = "",
    ) -> TraceEvent:
        """Record ``duration_ns`` of simulated work and advance the clock.

        Durations are rounded to whole nanoseconds; negative durations are
        rejected because simulated time is monotonic.
        """
        ns = int(round(duration_ns))
        if ns < 0:
            raise ValueError(f"cannot charge negative time: {duration_ns}")
        event = TraceEvent(
            start_ns=self._now_ns,
            duration_ns=ns,
            category=category,
            step=step,
            label=label,
        )
        self.timeline.append(event)
        self._now_ns += ns
        if self.profiler is not None:
            self.profiler.commit(ns, str(step))
        return event

    def elapsed_ms(self) -> float:
        """Total simulated milliseconds since the clock was created."""
        return self._now_ns / 1e6
