"""Memoized build artifacts shared by tests, examples, and benchmarks.

Kernel builds and (especially) bzImage compression are the expensive parts
of the simulation; every experiment over the same (config, variant, scale,
seed, codec) tuple reuses one artifact, just as the paper reuses one set of
built kernels across all runs.
"""

from __future__ import annotations

import threading

from repro.bzimage.build import build_bzimage
from repro.bzimage.format import BzImage
from repro.kernel.build import build_kernel
from repro.kernel.config import PRESETS, KernelConfig, KernelVariant
from repro.kernel.image import KernelImage

_KERNELS: dict[tuple[str, KernelVariant, int, int], KernelImage] = {}
_BZIMAGES: dict[tuple[str, KernelVariant, int, int, str, bool], BzImage] = {}
# fleet worker threads may fault in the same artifact concurrently; builds
# are deterministic, so the lock only prevents duplicate work
_LOCK = threading.Lock()

#: default build scale for benchmarks (DESIGN.md §7)
BENCH_SCALE = 16


def get_kernel(
    config: KernelConfig | str,
    variant: KernelVariant,
    scale: int = BENCH_SCALE,
    seed: int = 1,
) -> KernelImage:
    """Build (or fetch) a kernel image."""
    cfg = PRESETS[config] if isinstance(config, str) else config
    key = (cfg.name, variant, scale, seed)
    with _LOCK:
        if key not in _KERNELS:
            _KERNELS[key] = build_kernel(cfg, variant, scale=scale, seed=seed)
        return _KERNELS[key]


def get_bzimage(
    config: KernelConfig | str,
    variant: KernelVariant,
    codec: str,
    scale: int = BENCH_SCALE,
    seed: int = 1,
    optimized: bool = False,
) -> BzImage:
    """Build (or fetch) a bzImage for the given kernel and codec."""
    cfg = PRESETS[config] if isinstance(config, str) else config
    key = (cfg.name, variant, scale, seed, codec, optimized)
    kernel = get_kernel(cfg, variant, scale=scale, seed=seed)
    with _LOCK:
        if key not in _BZIMAGES:
            _BZIMAGES[key] = build_bzimage(kernel, codec, optimized=optimized)
        return _BZIMAGES[key]


def clear_cache() -> None:
    """Drop all memoized artifacts (used by tests)."""
    with _LOCK:
        _KERNELS.clear()
        _BZIMAGES.clear()
