"""Command-line interface.

Subcommands::

    python -m repro boot    --kernel aws --mode fgkaslr [--format bzimage ...]
    python -m repro fleet   --kernel aws --count 64 --workers 8   # Section 6
    python -m repro serve   --arrivals poisson --rate 40 --json   # SLO report
    python -m repro watch   --strategy restore --audit            # flight rec.
    python -m repro trace   --rate 90 --trace-id <id>             # span trees
    python -m repro metrics --kernel aws --vms 4                  # Prometheus

``boot`` and ``fleet`` accept ``--json`` (machine-readable report) and
``--trace`` (per-stage pipeline span table), plus the telemetry exports:
``--metrics`` (Prometheus text to stdout) and
``--trace-export {chrome,json,prometheus} [--trace-out trace.json]``
(Chrome ``trace_event`` JSON loads in Perfetto / ``chrome://tracing``).
Both also accept ``--profile {folded,json,table}`` (attribute every
simulated nanosecond to boot/stage/principal/charge-kind; ``folded`` is
flamegraph.pl-compatible) with ``--profile-out PATH``.
Other subcommands::
    python -m repro profile --kernel aws --count 4    # cost attribution
    python -m repro bench-compare                     # regression gate
    python -m repro sizes                     # Table 1
    python -m repro codecs  --kernel lupine   # compression stats
    python -m repro lebench                   # Figure 11 summary
    python -m repro entropy --kernel aws      # randomization entropy / leaks
    python -m repro faults                    # injectable fault kinds/stages

``boot`` and ``fleet`` accept ``--inject-fault
stage=<s>,kind=<k>[,rate=<r>][,seed=<n>][,boot=<i>]`` (repeatable) for
deterministic failure-containment runs; ``fleet`` adds ``--retries N``
(per-boot retry budget, fresh seed per retry).

``fleet``, ``serve``, and ``watch`` carry the flight recorder:
``--timeseries-out PATH`` (windowed counter rates / gauges / percentiles
as byte-stable JSON, ``--window-ms`` wide) and ``--audit`` (KASLR layout
fingerprinting: distinct-layout fraction, empirical entropy bits, and
address-validity lifetimes per strategy, to ``--audit-out``).  ``serve``
and ``watch`` evaluate alert rules at every window close
(``--slo-p99-ms``, ``--cold-budget``, ``--alert-for``).

Request-scoped tracing rides on top: ``serve --trace-requests`` attaches
per-cell p99 tail attribution (critical-path segments, slowest-request
exemplars) to the SLO report; flight-recorder histograms and firing
alerts carry exemplar trace ids; and ``repro trace`` replays the same
seeded flight to resolve any such id into its causal span tree
(``--trace-id``), list the slowest requests per cell (``--top``), or
emit the whole trace document (``--json``).  Telemetry-exporting
subcommands also accept ``--events-out PATH`` (the shared stage-event
log, streamed as JSONL).

All times are simulated milliseconds at paper scale (see DESIGN.md §7).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis import render_table, run_boots
from repro.artifacts import get_bzimage, get_kernel
from repro.compress import measure as measure_codec
from repro.core import RandomizeMode
from repro.errors import BootFailure, FaultPlanError
from repro.faults import FAULT_KINDS, FaultPlan
from repro.host import HostStorage
from repro.kernel import PRESETS, KernelVariant
from repro.monitor import BootFormat, BootProtocol, Firecracker, Qemu, VmConfig
from repro.pipeline import PIPELINE_FLAVORS
from repro.security.audit import KaslrAuditor
from repro.simtime import CostModel, JitterModel
from repro.telemetry import (
    AlertManager,
    AlertRule,
    BurnRateRule,
    RequestTracer,
    Telemetry,
    TimeSeriesRecorder,
    request_paths,
    slowest,
    tail_attribution,
    to_chrome_trace,
    to_json_dump,
    to_prometheus,
)
from repro.telemetry.profiler import CostProfiler

_MODE_VARIANT = {
    RandomizeMode.NONE: KernelVariant.NOKASLR,
    RandomizeMode.KASLR: KernelVariant.KASLR,
    RandomizeMode.FGKASLR: KernelVariant.FGKASLR,
}


def _make_vmm(
    args,
    telemetry: Telemetry | None = None,
    profiler: CostProfiler | None = None,
) -> Firecracker:
    costs = CostModel(scale=args.scale, jitter=JitterModel(sigma=args.jitter))
    cls = Qemu if getattr(args, "qemu", False) else Firecracker
    return cls(
        HostStorage(),
        costs,
        telemetry=telemetry,
        profiler=profiler,
        fault_plan=_make_fault_plan(args),
    )


def _make_fault_plan(args) -> FaultPlan | None:
    """Parse every ``--inject-fault`` spec; None when the flag is absent.

    No plan object exists at all without the flag, preserving the
    zero-overhead (byte-identical output) contract for ordinary runs.
    """
    specs = getattr(args, "inject_fault", None)
    if not specs:
        return None
    return FaultPlan.parse(specs, seed=getattr(args, "fault_seed", 0))


def _make_profiler(args) -> CostProfiler | None:
    """A profiler when ``--profile`` asked for one, else None (no overhead)."""
    return CostProfiler() if getattr(args, "profile", None) else None


def _emit_profile(args, profiler: CostProfiler | None) -> None:
    """Honor ``--profile {folded,json,table}`` and ``--profile-out``."""
    if profiler is None:
        return
    content = profiler.render(args.profile)
    out = getattr(args, "profile_out", "-")
    if out == "-":
        sys.stdout.write(content)
    else:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(content)


def _write_text(path: str, content: str) -> None:
    if path == "-":
        sys.stdout.write(content)
    else:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)


def _dump_json(obj) -> str:
    return json.dumps(obj, indent=2, sort_keys=True) + "\n"


def _make_recorder(args) -> TimeSeriesRecorder | None:
    """A flight recorder when ``--timeseries-out`` asked for one."""
    if getattr(args, "timeseries_out", None) is None:
        return None
    return TimeSeriesRecorder(window_ns=int(round(args.window_ms * 1e6)))


def _emit_flight(args, recorder, auditor) -> None:
    """Honor ``--timeseries-out`` and ``--audit``/``--audit-out``."""
    if recorder is not None and getattr(args, "timeseries_out", None):
        _write_text(args.timeseries_out, _dump_json(recorder.to_json_dict()))
    if auditor is not None:
        _write_text(
            getattr(args, "audit_out", "-"), _dump_json(auditor.to_json_dict())
        )


def _render_export(telemetry: Telemetry, fmt: str) -> str:
    """One telemetry snapshot, serialized byte-stably in ``fmt``."""
    snapshot = telemetry.snapshot()
    if fmt == "prometheus":
        return to_prometheus(snapshot)
    if fmt == "chrome":
        obj = to_chrome_trace(snapshot)
    else:
        obj = to_json_dump(snapshot)
    return json.dumps(obj, indent=2, sort_keys=True) + "\n"


def _emit_telemetry(args, telemetry: Telemetry) -> None:
    """Honor ``--metrics``, ``--trace-export``/``--trace-out``, and
    ``--events-out`` (streamed JSONL — never materialized in memory)."""
    if getattr(args, "metrics", False):
        sys.stdout.write(to_prometheus(telemetry.snapshot()))
    fmt = getattr(args, "trace_export", None)
    if fmt:
        content = _render_export(telemetry, fmt)
        if args.trace_out == "-":
            sys.stdout.write(content)
        else:
            with open(args.trace_out, "w", encoding="utf-8") as fh:
                fh.write(content)
    events_out = getattr(args, "events_out", None)
    if events_out:
        if events_out == "-":
            telemetry.log.write_jsonl(sys.stdout)
        else:
            with open(events_out, "w", encoding="utf-8") as fh:
                telemetry.log.write_jsonl(fh)


def _build_cfg(args) -> VmConfig:
    mode = RandomizeMode(args.mode)
    kernel = get_kernel(args.kernel, _MODE_VARIANT[mode], scale=args.scale)
    if args.format == "bzimage":
        bz = get_bzimage(
            args.kernel,
            _MODE_VARIANT[mode],
            args.codec,
            scale=args.scale,
            optimized=args.optimized,
        )
        return VmConfig(
            kernel=kernel,
            boot_format=BootFormat.BZIMAGE,
            bzimage=bz,
            randomize=mode,
            mem_mib=args.mem,
            seed=args.seed,
        )
    return VmConfig(
        kernel=kernel,
        randomize=mode,
        boot_protocol=BootProtocol(args.protocol),
        mem_mib=args.mem,
        seed=args.seed,
    )


def _cmd_boot(args) -> int:
    telemetry = Telemetry()
    profiler = _make_profiler(args)
    vmm = _make_vmm(args, telemetry=telemetry, profiler=profiler)
    cfg = _build_cfg(args)
    if args.boots > 1 and (args.json or args.trace):
        print("--json/--trace report a single boot; drop --boots", file=sys.stderr)
        return 2
    if args.boots > 1:
        series = run_boots(vmm, cfg, n=args.boots, warm=not args.cold)
        print(
            render_table(
                ["metric", "mean", "min", "max"],
                [["total ms", series.total.mean, series.total.min, series.total.max]]
                + [
                    [name, stats, "", ""]
                    for name, stats in series.breakdown_means().items()
                ],
                title=f"{cfg.kernel.name} x{args.boots} boots "
                f"({'cold' if args.cold else 'cached'})",
            )
        )
        _emit_telemetry(args, telemetry)
        _emit_profile(args, profiler)
        return 0
    if not args.cold:
        vmm.warm_caches(cfg)
    else:
        cfg.drop_caches = True
    try:
        report = vmm.boot(cfg)
    except BootFailure as exc:
        # contained: report the attributed failure instead of a traceback
        if args.json:
            print(json.dumps({"failure": exc.to_json()}, indent=2))
        else:
            print(
                f"boot failed at stage {exc.stage} ({exc.kind}, "
                f"attempt {exc.attempt}): {exc}",
                file=sys.stderr,
            )
        _emit_telemetry(args, telemetry)
        _emit_profile(args, profiler)
        return 1
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
        _emit_telemetry(args, telemetry)
        _emit_profile(args, profiler)
        return 0
    print(report.summary())
    if args.trace:
        print(
            render_table(
                ["stage", "principal", "start ms", "charged ms", "cache", "detail"],
                report.stage_rows(),
                title=f"pipeline stages ({report.vmm_name}, {report.boot_format})",
            )
        )
    if args.timeline:
        from repro.analysis import render_timeline

        print(render_timeline(report.timeline))
    for step, ms in sorted(report.steps_ms().items(), key=lambda kv: -kv[1]):
        if ms > 0:
            print(f"  {step:<26} {ms:9.3f} ms")
    layout = report.layout
    if layout.randomized:
        print(f"  virtual offset: {layout.voffset:#x} "
              f"({layout.total_entropy_bits:.1f} bits of entropy)")
    print(f"  verified {report.verification.functions_checked} functions / "
          f"{report.verification.sites_checked} relocation sites")
    _emit_telemetry(args, telemetry)
    _emit_profile(args, profiler)
    return 0


def _run_fleet(args):
    """Launch one seeded fleet.

    Returns ``(report, telemetry, profiler, recorder, auditor)``; the
    recorder and auditor are ``None`` unless ``--timeseries-out`` /
    ``--audit`` asked for them (zero overhead otherwise).
    """
    from repro.monitor import BootArtifactCache, FleetManager, default_workers

    recorder = _make_recorder(args)
    telemetry = Telemetry(timeseries=recorder)
    auditor = (
        KaslrAuditor(telemetry=telemetry)
        if getattr(args, "audit", False)
        else None
    )
    profiler = _make_profiler(args)
    vmm = _make_vmm(args, telemetry=telemetry, profiler=profiler)
    vmm.artifact_cache = BootArtifactCache(
        max_entries=args.cache_entries,
        registry=telemetry.registry,
        disk_path=getattr(args, "cache_dir", None),
    )
    cfg = _build_cfg(args)
    cfg.seed = None  # per-instance seeds come from the fleet manager
    workers = args.workers
    if workers is None:
        workers = default_workers(getattr(args, "workers_cap", 8))
    manager = FleetManager(
        vmm,
        workers=workers,
        auditor=auditor,
        executor=getattr(args, "executor", "thread"),
    )
    report = manager.launch(
        cfg,
        args.count,
        fleet_seed=args.seed,
        warm=not args.cold,
        retries=getattr(args, "retries", 1),
    )
    if recorder is not None:
        # the frame sequence tiles the fleet's whole wall-clock span
        recorder.close(int(round(report.makespan_ms * 1e6)))
    return report, telemetry, profiler, recorder, auditor


def _cmd_fleet(args) -> int:
    report, telemetry, profiler, recorder, auditor = _run_fleet(args)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
        _emit_telemetry(args, telemetry)
        _emit_profile(args, profiler)
        _emit_flight(args, recorder, auditor)
        return 0
    print(report.summary())
    for failure in report.failures:
        print(
            f"  boot {failure.index} failed at {failure.stage} "
            f"({failure.kind}, attempt {failure.attempt}): {failure}"
        )
    if args.trace and report.boots:
        first = report.boots[0].report
        print(
            render_table(
                ["stage", "principal", "start ms", "charged ms", "cache", "detail"],
                first.stage_rows(),
                title=f"pipeline stages (boot 0 of {report.n_vms})",
            )
        )
    print(
        render_table(
            ["stage", "p50 ms", "p99 ms", "mean ms", "max ms"],
            report.stage_rows(),
            title=f"per-boot stage latency across {report.n_vms} VMs",
        )
    )
    print(
        f"  {report.unique_layouts} distinct layouts across {report.n_vms} VMs"
    )
    _emit_telemetry(args, telemetry)
    _emit_profile(args, profiler)
    _emit_flight(args, recorder, auditor)
    return 0


def _cmd_metrics(args) -> int:
    """Run one seeded fleet and print its Prometheus metrics text."""
    _report, telemetry, _profiler, recorder, auditor = _run_fleet(args)
    sys.stdout.write(to_prometheus(telemetry.snapshot()))
    _emit_flight(args, recorder, auditor)
    return 0


def _cmd_profile(args) -> int:
    """Run a seeded fleet under the profiler and print the attribution."""
    args.profile = args.fmt  # reuse the boot/fleet profiler plumbing
    args.profile_out = args.out
    _report, _telemetry, profiler, recorder, auditor = _run_fleet(args)
    _emit_profile(args, profiler)
    _emit_flight(args, recorder, auditor)
    return 0


def _cmd_bench_compare(args) -> int:
    from repro.tools.benchgate import run_compare

    return run_compare(
        results_dir=args.results,
        baselines_path=args.baselines,
        update=args.update,
        strict=args.strict,
        write=sys.stdout.write,
    )


def _cmd_cache(args) -> int:
    """Inspect or evict the persistent on-disk artifact-cache tier."""
    from repro.monitor import DiskCacheTier

    tier = DiskCacheTier(args.dir)
    if args.clear:
        removed = tier.clear()
        print(f"evicted {removed} entries from {tier.path}")
        return 0
    if args.evict is not None:
        removed = tier.evict(args.evict)
        print(f"evicted {removed} entries matching {args.evict!r} "
              f"from {tier.path}")
        return 0
    rows = tier.entries()
    if args.json:
        print(json.dumps({"dir": str(tier.path), "entries": rows}, indent=2))
        return 0
    if not rows:
        print(f"cache tier at {tier.path} is empty")
        return 0
    print(render_table(
        ["file", "bytes", "image digest", "policy", "seed class", "valid"],
        [[r["file"], str(r["bytes"]),
          (r.get("image_digest") or "?")[:12],
          (r.get("policy") or "?")[:12],
          r.get("seed_class") or "?",
          "yes" if r.get("valid") else "NO"]
         for r in rows],
        title=f"disk cache tier at {tier.path}",
    ))
    return 0


def _cmd_sizes(args) -> int:
    rows = []
    for name in ("lupine", "aws", "ubuntu"):
        for variant in KernelVariant:
            kernel = get_kernel(name, variant, scale=args.scale)
            bz_none = get_bzimage(name, variant, "none", scale=args.scale)
            bz_lz4 = get_bzimage(name, variant, "lz4", scale=args.scale)
            mb = 1024 * 1024 / args.scale  # paper-scale MiB per actual byte
            rows.append(
                [
                    kernel.name,
                    f"{kernel.vmlinux_size / mb:.1f}M",
                    f"{bz_none.size / mb:.1f}M",
                    f"{bz_lz4.size / mb:.1f}M",
                    f"{kernel.relocs_size * args.scale // 1024}K"
                    if kernel.relocs_size
                    else "N/A",
                ]
            )
    print(
        render_table(
            ["kernel", "vmlinux", "bzImage(none)", "bzImage(lz4)", "relocs"],
            rows,
            title="Table 1 (paper scale)",
        )
    )
    return 0


def _cmd_codecs(args) -> int:
    kernel = get_kernel(args.kernel, KernelVariant.KASLR, scale=args.scale)
    rows = []
    for codec in ("none", "lz4", "lzo", "gzip", "bzip2", "xz", "lzma"):
        stats = measure_codec(codec, kernel.vmlinux)
        rows.append([codec, f"{stats.ratio:.3f}", f"{stats.savings_pct:.1f}%"])
    print(
        render_table(
            ["codec", "ratio", "savings"],
            rows,
            title=f"compression of {kernel.name} vmlinux",
        )
    )
    return 0


def _cmd_lebench(args) -> int:
    from repro.lebench import run_lebench

    vmm = _make_vmm(args)
    results = {}
    for mode in (RandomizeMode.NONE, RandomizeMode.KASLR, RandomizeMode.FGKASLR):
        kernel = get_kernel(args.kernel, _MODE_VARIANT[mode], scale=args.scale)
        cfg = VmConfig(kernel=kernel, randomize=mode, seed=args.seed)
        vmm.warm_caches(cfg)
        report = vmm.boot(cfg)
        results[mode] = run_lebench(kernel, report.layout)
    base = results[RandomizeMode.NONE]
    rows = [
        [
            name,
            f"{results[RandomizeMode.KASLR].normalized_to(base)[name]:.3f}",
            f"{results[RandomizeMode.FGKASLR].normalized_to(base)[name]:.3f}",
        ]
        for name in base.by_name()
    ]
    print(
        render_table(
            ["test", "kaslr", "fgkaslr"],
            rows,
            title=f"LEBench normalized to {args.kernel}-nokaslr",
        )
    )
    return 0


def _cmd_entropy(args) -> int:
    from repro.security import GadgetCatalog, simulate_leak_attack

    vmm = _make_vmm(args)
    for mode in (RandomizeMode.KASLR, RandomizeMode.FGKASLR):
        kernel = get_kernel(args.kernel, _MODE_VARIANT[mode], scale=args.scale)
        cfg = VmConfig(kernel=kernel, randomize=mode, seed=args.seed)
        vmm.warm_caches(cfg)
        report = vmm.boot(cfg)
        catalog = GadgetCatalog.from_kernel(kernel, n_gadgets=200, seed=0)
        leak = simulate_leak_attack(kernel, report.layout, catalog, n_leaks=1)
        print(f"{kernel.name}: {report.layout.total_entropy_bits:.1f} bits; "
              f"one leak locates {leak.located_fraction * 100:.1f}% of gadgets")
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments import run_experiment

    result = run_experiment(args.id, boots=args.boots, scale=args.scale)
    print(result.table())
    return 0


def _cmd_serve(args) -> int:
    """Play open-loop traffic against warm pools; print the SLO report."""
    from repro.serve import (
        ArrivalSpec,
        AutoscalePolicy,
        SampledBackend,
        ServeConfig,
        ServeEngine,
        SloReport,
        StrategySlo,
    )
    from repro.workloads import FUNCTIONS, InstanceStrategy, ServerlessPlatform

    strategies = (
        list(InstanceStrategy)
        if args.strategy == "all"
        else [InstanceStrategy(args.strategy)]
    )
    rates = args.rate or [40.0]
    if args.function not in FUNCTIONS:
        print(
            f"unknown function {args.function!r}; "
            f"known: {', '.join(sorted(FUNCTIONS))}",
            file=sys.stderr,
        )
        return 2
    spec = FUNCTIONS[args.function]
    mode = RandomizeMode(args.mode)
    policy = AutoscalePolicy(
        min_ready=args.pool_min,
        max_ready=args.pool_max,
        scale_up_depth=args.scale_up_depth,
        idle_ns=int(round(args.idle_ms * 1e6)),
    )
    config = ServeConfig(
        policy=policy,
        provisioners=args.provisioners,
        queue_cap=args.queue_cap,
        deadline_ns=int(round(args.deadline_ms * 1e6)),
    )
    want_recorder = getattr(args, "timeseries_out", None) is not None
    # the tracer rides along whenever a flight recorder runs (so firing
    # alerts carry exemplar trace ids) or --trace-requests asked for the
    # SLO tail section; plain runs stay tracer-free and byte-identical
    tracer = (
        RequestTracer(args.seed)
        if want_recorder or args.trace_requests
        else None
    )
    telemetry = Telemetry(tracer=tracer)
    flight = want_recorder or args.audit
    auditor = KaslrAuditor(telemetry=telemetry) if args.audit else None
    window_ns = int(round(args.window_ms * 1e6))
    slo_ms = (
        args.slo_p99_ms if args.slo_p99_ms is not None else args.deadline_ms
    )
    rows = []
    cells = []
    for strategy in strategies:
        # a fresh monitor per strategy: independent cost-jitter streams,
        # so strategies stay comparable and byte-stable in any order.
        # Each strategy writes metrics through its own scope, so counters
        # never bleed between strategies sharing this process.
        scope = telemetry.scoped(strategy=strategy.value)
        vmm = _make_vmm(args, telemetry=scope)
        kernel = get_kernel(args.kernel, _MODE_VARIANT[mode], scale=args.scale)
        platform = ServerlessPlatform(
            vmm,
            lambda seed, k=kernel, m=mode: VmConfig(
                kernel=k, randomize=m, seed=seed
            ),
            strategy=strategy,
        )
        backend = SampledBackend.from_platform(
            platform,
            spec,
            n_samples=args.samples,
            seed=args.seed,
            tracer=(
                tracer.scoped(strategy.value) if tracer is not None else None
            ),
        )
        for rate in rates:
            cell = f"{strategy.value}@{rate:g}"
            recorder = alerts = None
            if want_recorder:
                recorder = TimeSeriesRecorder(window_ns=window_ns)
                alerts = AlertManager(
                    _serve_alert_rules(args, slo_ms),
                    telemetry=telemetry,
                    track=f"alerts:{cell}",
                ).attach(recorder)
            engine = ServeEngine(
                backend,
                config,
                telemetry=scope,
                labels={"strategy": strategy.value, "mix": args.arrivals},
                recorder=recorder,
                auditor=auditor,
                track=f"serve:{cell}" if flight else None,
                tracer=tracer.scoped(cell) if tracer is not None else None,
            )
            result = engine.run(
                ArrivalSpec(
                    rate_per_s=rate,
                    duration_s=args.duration,
                    mix=args.arrivals,
                    seed=args.seed,
                )
            )
            tail = (
                _cell_tail(tracer, cell)
                if tracer is not None and args.trace_requests
                else None
            )
            rows.append(
                StrategySlo.from_result(
                    result,
                    strategy=strategy.value,
                    mix=args.arrivals,
                    rate_per_s=rate,
                    duration_s=args.duration,
                    tail=tail,
                )
            )
            if recorder is not None:
                cells.append(
                    {
                        "strategy": strategy.value,
                        "mix": args.arrivals,
                        "rate_per_s": rate,
                        "timeseries": recorder.to_json_dict(),
                        "alerts": alerts.to_json_dict(),
                    }
                )
    report = SloReport(
        seed=args.seed,
        function=args.function,
        mix=args.arrivals,
        duration_s=args.duration,
        pool_min=args.pool_min,
        pool_max=args.pool_max,
        provisioners=args.provisioners,
        queue_cap=args.queue_cap,
        deadline_ms=args.deadline_ms,
        samples_per_strategy=args.samples,
        rows=tuple(rows),
    )
    if args.json:
        sys.stdout.write(report.to_json())
        _emit_telemetry(args, telemetry)
        _emit_serve_flight(args, cells, auditor)
        return 0
    print(
        render_table(
            ["strategy", "rate/s", "served", "failed", "cold%",
             "p50 ms", "p99 ms", "peak q", "busy"],
            [
                [
                    r.strategy,
                    f"{r.rate_per_s:g}",
                    r.served,
                    r.rejected + r.deadline_missed,
                    f"{r.cold_frac * 100:.1f}",
                    f"{r.p50_ms:.3f}",
                    f"{r.p99_ms:.3f}",
                    r.max_queue_depth,
                    f"{r.provisioner_busy:.2f}",
                ]
                for r in report.rows
            ],
            title=f"{args.function} under {args.arrivals} arrivals "
            f"({args.duration:g}s, pool {args.pool_min}..{args.pool_max})",
        )
    )
    for r in report.rows:
        if r.tail is not None:
            print(f"  {r.strategy}@{r.rate_per_s:g}: {_format_tail(r.tail)}")
            for s in r.tail["slowest"]:
                print(
                    f"    {s['trace_id']}  req {s['request']}  "
                    f"{s['latency_ms']:.3f} ms  "
                    f"{'cold' if s['cold'] else 'warm'}"
                )
    _emit_telemetry(args, telemetry)
    _emit_serve_flight(args, cells, auditor)
    return 0


#: exemplar trace ids pinned per tail-attribution section
_TAIL_TOP_K = 3


def _cell_tail(tracer: RequestTracer, cell: str, top: int = _TAIL_TOP_K) -> dict | None:
    """One cell's tail attribution + slowest exemplars, JSON-shaped.

    Conservation is enforced on the way through: ``request_paths``
    re-checks every critical path (segments must sum *exactly* to the
    request latency) before anything is aggregated.
    """
    paths = request_paths(
        ctx
        for ctx in tracer.traces()
        if ctx.key.startswith(f"{cell}/req/")
    )
    att = tail_attribution(paths)
    if att is None:
        return None
    return {
        **att.to_json(),
        "slowest": [
            {
                "trace_id": p.trace_id,
                "request": p.request,
                "latency_ms": round(p.latency_ns / 1e6, 4),
                "cold": p.cold,
            }
            for p in slowest(paths, top)
        ],
    }


def _format_tail(tail: dict) -> str:
    """'p99 requests spend 72% in provision.X / 21% in queued / ...'."""
    fractions = tail["fractions"]
    parts = " / ".join(
        f"{fractions[kind] * 100:.1f}% {kind}"
        for kind in sorted(fractions, key=lambda k: (-fractions[k], k))
    )
    return (
        f"p{tail['percentile']:g} tail ({tail['requests']} requests >= "
        f"{tail['threshold_ms']:g} ms): {parts}"
    )


def _serve_alert_rules(args, slo_ms: float) -> tuple:
    """The default serve alert set: latency threshold + cold-start burn."""
    return (
        AlertRule(
            "p99-above-slo",
            "serve_latency_ms",
            "p99",
            ">",
            slo_ms,
            for_windows=args.alert_for,
        ),
        BurnRateRule(
            "cold-start-burn",
            "serve_cold_starts",
            "serve_served",
            budget=args.cold_budget,
            long_windows=4,
            short_windows=1,
        ),
    )


def _emit_serve_flight(args, cells: list, auditor) -> None:
    """Write the per-cell flight-recorder document and the audit report."""
    if getattr(args, "timeseries_out", None):
        doc = {
            "schema_version": 1,
            "window_ms": round(args.window_ms, 6),
            "cells": cells,
        }
        _write_text(args.timeseries_out, _dump_json(doc))
    if auditor is not None:
        _write_text(args.audit_out, _dump_json(auditor.to_json_dict()))


def _cmd_watch(args) -> int:
    """Flight-recorder view of one serve cell: window table + alerts."""
    from repro.serve import (
        ArrivalSpec,
        AutoscalePolicy,
        SampledBackend,
        ServeConfig,
        ServeEngine,
    )
    from repro.workloads import FUNCTIONS, InstanceStrategy, ServerlessPlatform

    if args.function not in FUNCTIONS:
        print(
            f"unknown function {args.function!r}; "
            f"known: {', '.join(sorted(FUNCTIONS))}",
            file=sys.stderr,
        )
        return 2
    spec = FUNCTIONS[args.function]
    strategy = InstanceStrategy(args.strategy)
    mode = RandomizeMode(args.mode)
    tracer = RequestTracer(args.seed)
    telemetry = Telemetry(tracer=tracer)
    scope = telemetry.scoped(strategy=strategy.value)
    vmm = _make_vmm(args, telemetry=scope)
    kernel = get_kernel(args.kernel, _MODE_VARIANT[mode], scale=args.scale)
    platform = ServerlessPlatform(
        vmm,
        lambda seed, k=kernel, m=mode: VmConfig(
            kernel=k, randomize=m, seed=seed
        ),
        strategy=strategy,
    )
    backend = SampledBackend.from_platform(
        platform,
        spec,
        n_samples=args.samples,
        seed=args.seed,
        tracer=tracer.scoped(strategy.value),
    )
    config = ServeConfig(
        policy=AutoscalePolicy(
            min_ready=args.pool_min,
            max_ready=args.pool_max,
            scale_up_depth=args.scale_up_depth,
            idle_ns=int(round(args.idle_ms * 1e6)),
        ),
        provisioners=args.provisioners,
        queue_cap=args.queue_cap,
        deadline_ns=int(round(args.deadline_ms * 1e6)),
    )
    cell = f"{strategy.value}@{args.rate:g}"
    recorder = TimeSeriesRecorder(
        window_ns=int(round(args.window_ms * 1e6))
    )
    slo_ms = (
        args.slo_p99_ms if args.slo_p99_ms is not None else args.deadline_ms
    )
    alerts = AlertManager(
        _serve_alert_rules(args, slo_ms),
        telemetry=telemetry,
        track=f"alerts:{cell}",
    ).attach(recorder)
    auditor = KaslrAuditor(telemetry=telemetry) if args.audit else None
    engine = ServeEngine(
        backend,
        config,
        telemetry=scope,
        labels={"strategy": strategy.value, "mix": args.arrivals},
        recorder=recorder,
        auditor=auditor,
        track=f"serve:{cell}",
        tracer=tracer.scoped(cell),
    )
    engine.run(
        ArrivalSpec(
            rate_per_s=args.rate,
            duration_s=args.duration,
            mix=args.arrivals,
            seed=args.seed,
        )
    )
    transitions = alerts.to_json_dict()["transitions"]
    if args.json:
        doc = {
            "schema_version": 1,
            "window_ms": round(args.window_ms, 6),
            "cells": [
                {
                    "strategy": strategy.value,
                    "mix": args.arrivals,
                    "rate_per_s": args.rate,
                    "timeseries": recorder.to_json_dict(),
                    "alerts": alerts.to_json_dict(),
                }
            ],
        }
        if auditor is not None:
            doc["audit"] = auditor.to_json_dict()
        sys.stdout.write(_dump_json(doc))
        return 0

    def cnt(frame, series: str) -> int:
        return int(frame.value(series, "delta") or 0)

    print(
        render_table(
            ["win", "start ms", "arrive", "served", "cold", "evict",
             "p99 ms", "q max"],
            [
                [
                    frame.index,
                    f"{frame.start_ns / 1e6:g}",
                    cnt(frame, "serve_arrivals"),
                    cnt(frame, "serve_served"),
                    cnt(frame, "serve_cold_starts"),
                    cnt(frame, "serve_evicted"),
                    f"{frame.value('serve_latency_ms', 'p99') or 0:.3f}",
                    int(frame.value("serve_queue_depth", "max") or 0),
                ]
                for frame in recorder.windows()
            ],
            title=f"{cell} under {args.arrivals} arrivals "
            f"(window {args.window_ms:g} ms)",
        )
    )
    if transitions:
        for t in transitions:
            value = "-" if t["value"] is None else f"{t['value']:g}"
            traces = (
                " traces=" + ",".join(t["exemplars"])
                if t.get("exemplars")
                else ""
            )
            print(
                f"  [{t['at_ms']:9.1f} ms] {t['rule']}: "
                f"{t['from']} -> {t['to']} (value {value}){traces}"
            )
    else:
        print("  no alert transitions")
    if auditor is not None:
        for name, audit in sorted(
            auditor.to_json_dict()["strategies"].items()
        ):
            print(
                f"  audit {name}: {audit['distinct_layouts']} distinct "
                f"layouts / {audit['boots']} instances "
                f"({audit['entropy_bits']:.2f} bits, "
                f"{audit['duplicates']} duplicates)"
            )
    return 0


def _cmd_trace(args) -> int:
    """Replay a seeded serve flight under the tracer; resolve span trees.

    Trace ids are pure functions of ``(seed, key)``, so this command
    resolves exemplar ids found in flight-recorder documents written by
    a *separate* ``repro serve``/``repro watch`` invocation — rerun the
    same flight shape here and ``--trace-id`` lands on the same tree.
    """
    from repro.serve import (
        ArrivalSpec,
        AutoscalePolicy,
        SampledBackend,
        ServeConfig,
        ServeEngine,
    )
    from repro.workloads import FUNCTIONS, InstanceStrategy, ServerlessPlatform

    strategies = (
        list(InstanceStrategy)
        if args.strategy == "all"
        else [InstanceStrategy(args.strategy)]
    )
    rates = args.rate or [40.0]
    if args.function not in FUNCTIONS:
        print(
            f"unknown function {args.function!r}; "
            f"known: {', '.join(sorted(FUNCTIONS))}",
            file=sys.stderr,
        )
        return 2
    spec = FUNCTIONS[args.function]
    mode = RandomizeMode(args.mode)
    config = ServeConfig(
        policy=AutoscalePolicy(
            min_ready=args.pool_min,
            max_ready=args.pool_max,
            scale_up_depth=args.scale_up_depth,
            idle_ns=int(round(args.idle_ms * 1e6)),
        ),
        provisioners=args.provisioners,
        queue_cap=args.queue_cap,
        deadline_ns=int(round(args.deadline_ms * 1e6)),
    )
    tracer = RequestTracer(args.seed)
    telemetry = Telemetry(tracer=tracer)
    cells = []
    for strategy in strategies:
        scope = telemetry.scoped(strategy=strategy.value)
        vmm = _make_vmm(args, telemetry=scope)
        kernel = get_kernel(args.kernel, _MODE_VARIANT[mode], scale=args.scale)
        platform = ServerlessPlatform(
            vmm,
            lambda seed, k=kernel, m=mode: VmConfig(
                kernel=k, randomize=m, seed=seed
            ),
            strategy=strategy,
        )
        backend = SampledBackend.from_platform(
            platform,
            spec,
            n_samples=args.samples,
            seed=args.seed,
            tracer=tracer.scoped(strategy.value),
        )
        for rate in rates:
            cell = f"{strategy.value}@{rate:g}"
            engine = ServeEngine(
                backend,
                config,
                telemetry=scope,
                labels={"strategy": strategy.value, "mix": args.arrivals},
                tracer=tracer.scoped(cell),
            )
            result = engine.run(
                ArrivalSpec(
                    rate_per_s=rate,
                    duration_s=args.duration,
                    mix=args.arrivals,
                    seed=args.seed,
                )
            )
            paths = request_paths(
                ctx
                for ctx in tracer.traces()
                if ctx.key.startswith(f"{cell}/req/")
            )
            att = tail_attribution(paths)
            top = slowest(paths, args.top)
            cells.append(
                {
                    "strategy": strategy.value,
                    "mix": args.arrivals,
                    "rate_per_s": rate,
                    "arrivals": result.arrivals,
                    "served": result.served,
                    "tail": att.to_json() if att is not None else None,
                    "slowest": [p.to_json() for p in top],
                    "traces": {
                        p.trace_id: tracer.get(p.trace_id).to_json()
                        for p in top
                    },
                }
            )
    if args.trace_id:
        ctx = tracer.get(args.trace_id)
        if ctx is None:
            print(
                f"trace {args.trace_id} not found in this flight "
                f"(seed {args.seed}, {len(tracer.traces())} traces minted); "
                "rerun with the serve flags the exemplar came from",
                file=sys.stderr,
            )
            return 1
        if args.json:
            sys.stdout.write(
                _dump_json({"trace_id": ctx.trace_id, **ctx.to_json()})
            )
        else:
            _print_trace_tree(ctx)
        return 0
    if args.json:
        doc = {
            "schema_version": 1,
            "seed": args.seed,
            "function": args.function,
            "mix": args.arrivals,
            "duration_s": args.duration,
            "samples_per_strategy": args.samples,
            "cells": cells,
        }
        sys.stdout.write(_dump_json(doc))
        return 0
    for info in cells:
        label = f"{info['strategy']}@{info['rate_per_s']:g}"
        if info["tail"] is None:
            print(f"{label}: nothing served")
            continue
        print(f"{label}: {_format_tail(info['tail'])}")
        for p in info["slowest"]:
            segs = " ".join(
                f"{kind}={ns / 1e6:.3f}ms"
                for kind, ns in sorted(
                    p["segments"].items(), key=lambda kv: (-kv[1], kv[0])
                )
            )
            print(
                f"  {p['trace_id']}  req {p['request']}  "
                f"{p['latency_ns'] / 1e6:.3f} ms  "
                f"{'cold' if p['cold'] else 'warm'}  {segs}"
            )
    return 0


def _print_trace_tree(ctx) -> None:
    """Indented parent→child walk of one trace's span tree."""
    spans = ctx.spans()
    children: dict = {}
    for s in spans:
        children.setdefault(s.parent_id, []).append(s)

    def walk(span, depth: int) -> None:
        attrs = (
            "  " + json.dumps(span.attrs, sort_keys=True, default=str)
            if span.attrs
            else ""
        )
        print(
            f"  {'  ' * depth}{span.name} [{span.kind}] "
            f"{span.start_ns / 1e6:.3f}..{span.end_ns / 1e6:.3f} ms "
            f"(+{span.duration_ns / 1e6:.3f}){attrs}"
        )
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    print(f"trace {ctx.trace_id}  key {ctx.key}  spans {len(spans)}")
    for root in children.get(None, []):
        walk(root, 0)


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--metrics", action="store_true",
                        help="print Prometheus metrics text after the report")
    parser.add_argument("--trace-export",
                        choices=["chrome", "json", "prometheus"],
                        help="export the telemetry snapshot in this format")
    parser.add_argument("--trace-out", default="-", metavar="PATH",
                        help="trace export destination ('-' = stdout)")
    parser.add_argument("--events-out", default=None, metavar="PATH",
                        help="stream the shared telemetry event log as "
                             "JSONL here ('-' = stdout)")
    parser.add_argument("--profile", choices=["folded", "json", "table"],
                        help="attribute every simulated ns and emit the "
                             "cost profile in this format")
    parser.add_argument("--profile-out", default="-", metavar="PATH",
                        help="profile destination ('-' = stdout)")


def _add_recorder_flags(
    parser: argparse.ArgumentParser, window_ms: float
) -> None:
    parser.add_argument("--timeseries-out", default=None, metavar="PATH",
                        help="record windowed time series and write the "
                             "flight-recorder JSON here ('-' = stdout)")
    parser.add_argument("--window-ms", type=float, default=window_ms,
                        help="flight-recorder window width in simulated ms "
                             f"(default {window_ms:g})")
    parser.add_argument("--audit", action="store_true",
                        help="fingerprint every produced KASLR layout "
                             "(distinct-layout fraction, entropy, lifetime)")
    parser.add_argument("--audit-out", default="-", metavar="PATH",
                        help="audit report destination ('-' = stdout)")


def _add_alert_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--slo-p99-ms", type=float, default=None,
                        help="per-window p99 latency threshold for the "
                             "alert rule (default: the request deadline)")
    parser.add_argument("--cold-budget", type=float, default=0.25,
                        help="cold-start SLO budget as a fraction of "
                             "serves (burn-rate alert; default 0.25)")
    parser.add_argument("--alert-for", type=int, default=1,
                        help="windows a threshold breach must persist "
                             "before the alert fires (default 1)")


def _add_fleet_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kernel", choices=sorted(PRESETS), default="aws")
    parser.add_argument("--mode", choices=[m.value for m in RandomizeMode],
                        default="fgkaslr")
    parser.add_argument("--format", choices=["vmlinux", "bzimage"],
                        default="vmlinux")
    parser.add_argument("--codec", default="lz4")
    parser.add_argument("--optimized", action="store_true",
                        help="compression-none-optimized bzImage layout")
    parser.add_argument("--protocol", choices=[p.value for p in BootProtocol],
                        default="linux64")
    parser.add_argument("--mem", type=int, default=256, help="guest MiB")
    parser.add_argument("--count", "--vms", dest="count", type=int, default=64,
                        help="fleet size")
    parser.add_argument("--workers", type=int, default=None,
                        help="concurrent boot slots "
                             "(default: host cores, capped at 8)")
    parser.add_argument("--executor", choices=["thread", "process"],
                        default="thread",
                        help="boot backend: in-process threads or a "
                             "multiprocess engine with shared-memory "
                             "artifacts (default thread)")
    parser.add_argument("--seed", type=int, default=1,
                        help="fleet seed (per-VM seeds derive from it)")
    parser.add_argument("--cache-entries", type=int, default=64,
                        help="boot-artifact cache capacity")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent on-disk artifact-cache tier "
                             "(survives across invocations)")
    parser.add_argument("--cold", action="store_true",
                        help="skip warm-up (measure cold caches)")
    _add_fault_flags(parser)
    _add_recorder_flags(parser, window_ms=50.0)
    parser.add_argument("--retries", type=int, default=1,
                        help="retry budget per failed boot (default 1)")


def _add_fault_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--inject-fault", action="append", metavar="SPEC", default=None,
        help="deterministic fault spec "
             "stage=<s>,kind=<k>[,rate=<r>][,seed=<n>][,boot=<i>] "
             "(repeatable; see 'repro faults' for stages and kinds)",
    )
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="fault-plan seed (decorrelates rate draws)")


def _cmd_faults(args) -> int:
    """List the injectable fault kinds and the stage names they can target."""
    if args.json:
        print(json.dumps(
            {"kinds": FAULT_KINDS,
             "stages": {k: list(v) for k, v in PIPELINE_FLAVORS.items()}},
            indent=2, sort_keys=True,
        ))
        return 0
    print(render_table(
        ["kind", "effect"],
        [[kind, desc] for kind, desc in sorted(FAULT_KINDS.items())],
        title="injectable fault kinds",
    ))
    print(render_table(
        ["pipeline", "stages"],
        [[flavor, " ".join(stages)]
         for flavor, stages in PIPELINE_FLAVORS.items()],
        title="stage names by pipeline flavor",
    ))
    print("spec syntax: stage=<s>,kind=<k>[,rate=<r>][,seed=<n>][,boot=<i>]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--scale", type=int, default=16,
                        help="kernel build scale divisor (default 16)")
    common.add_argument("--jitter", type=float, default=0.0,
                        help="run-to-run noise sigma (default 0)")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="In-monitor (FG)KASLR reproduction (EuroSys 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    boot = sub.add_parser("boot", parents=[common],
                          help="boot one microVM and print the breakdown")
    boot.add_argument("--kernel", choices=sorted(PRESETS), default="aws")
    boot.add_argument("--mode", choices=[m.value for m in RandomizeMode],
                      default="kaslr")
    boot.add_argument("--format", choices=["vmlinux", "bzimage"], default="vmlinux")
    boot.add_argument("--codec", default="lz4")
    boot.add_argument("--optimized", action="store_true",
                      help="compression-none-optimized bzImage layout")
    boot.add_argument("--protocol", choices=[p.value for p in BootProtocol],
                      default="linux64")
    boot.add_argument("--mem", type=int, default=256, help="guest MiB")
    boot.add_argument("--seed", type=int, default=1)
    boot.add_argument("--boots", type=int, default=1, help="measure N boots")
    boot.add_argument("--cold", action="store_true", help="drop caches first")
    boot.add_argument("--qemu", action="store_true", help="QEMU monitor profile")
    boot.add_argument("--timeline", action="store_true",
                      help="render an ASCII Gantt of the boot")
    boot.add_argument("--json", action="store_true",
                      help="emit the full boot report as JSON")
    boot.add_argument("--trace", action="store_true",
                      help="print the pipeline stage span table")
    _add_fault_flags(boot)
    _add_telemetry_flags(boot)
    boot.set_defaults(func=_cmd_boot)

    fleet = sub.add_parser(
        "fleet", parents=[common],
        help="boot a fleet through the artifact cache (Section 6)",
    )
    _add_fleet_options(fleet)
    fleet.add_argument("--json", action="store_true",
                       help="emit the full fleet report as JSON")
    fleet.add_argument("--trace", action="store_true",
                       help="print the first boot's pipeline stage table")
    _add_telemetry_flags(fleet)
    fleet.set_defaults(func=_cmd_fleet)

    metrics = sub.add_parser(
        "metrics", parents=[common],
        help="run a seeded fleet and print Prometheus metrics text",
    )
    _add_fleet_options(metrics)
    metrics.set_defaults(func=_cmd_metrics, count=4, workers_cap=4)

    profile = sub.add_parser(
        "profile", parents=[common],
        help="run a seeded fleet under the cost profiler and print "
             "the per-nanosecond attribution",
    )
    _add_fleet_options(profile)
    profile.add_argument("--fmt", choices=["folded", "json", "table"],
                         default="folded",
                         help="output format (folded = flamegraph stacks)")
    profile.add_argument("--out", default="-", metavar="PATH",
                         help="profile destination ('-' = stdout)")
    profile.set_defaults(func=_cmd_profile, count=4, workers_cap=4)

    bench = sub.add_parser(
        "bench-compare",
        help="compare benchmarks/results/BENCH_*.json against the "
             "committed baselines; non-zero exit on regression",
    )
    bench.add_argument("--results", default="benchmarks/results",
                       metavar="DIR", help="directory holding BENCH_*.json")
    bench.add_argument("--baselines", default="benchmarks/baselines.json",
                       metavar="PATH", help="committed baseline store")
    bench.add_argument("--update", action="store_true",
                       help="rewrite the baseline store from the results")
    bench.add_argument("--strict", action="store_true",
                       help="fail when a baselined benchmark produced no result")
    bench.set_defaults(func=_cmd_bench_compare)

    cache = sub.add_parser(
        "cache",
        help="inspect or evict the persistent boot-artifact cache tier",
    )
    cache.add_argument("--dir", required=True, metavar="DIR",
                       help="cache-tier directory (same as fleet --cache-dir)")
    cache.add_argument("--evict", metavar="PREFIX", default=None,
                       help="remove entries whose file name starts "
                            "with PREFIX")
    cache.add_argument("--clear", action="store_true",
                       help="remove every entry")
    cache.add_argument("--json", action="store_true",
                       help="emit the inventory as JSON")
    cache.set_defaults(func=_cmd_cache)

    sizes = sub.add_parser("sizes", parents=[common], help="regenerate Table 1")
    sizes.set_defaults(func=_cmd_sizes)

    codecs = sub.add_parser("codecs", parents=[common], help="compression stats for a kernel")
    codecs.add_argument("--kernel", choices=sorted(PRESETS), default="lupine")
    codecs.set_defaults(func=_cmd_codecs)

    lebench = sub.add_parser("lebench", parents=[common], help="Figure 11 summary")
    lebench.add_argument("--kernel", choices=sorted(PRESETS), default="aws")
    lebench.add_argument("--seed", type=int, default=1)
    lebench.set_defaults(func=_cmd_lebench)

    entropy = sub.add_parser("entropy", parents=[common], help="entropy and value-of-a-leak")
    entropy.add_argument("--kernel", choices=sorted(PRESETS), default="aws")
    entropy.add_argument("--seed", type=int, default=1)
    entropy.set_defaults(func=_cmd_entropy)

    experiment = sub.add_parser(
        "experiment", parents=[common],
        help="run an artifact experiment (Appendix A: e1..e5)",
    )
    experiment.add_argument("id", choices=["e1", "e2", "e3", "e4", "e5"])
    experiment.add_argument("--boots", type=int, default=20)
    experiment.set_defaults(func=_cmd_experiment)

    serve = sub.add_parser(
        "serve", parents=[common],
        help="serverless control plane: open-loop traffic against warm "
             "pools; prints the SLO report",
    )
    serve.add_argument("--kernel", choices=sorted(PRESETS), default="aws")
    serve.add_argument("--mode", choices=[m.value for m in RandomizeMode],
                       default="kaslr")
    serve.add_argument("--function", default="api-echo",
                       help="workload function (see repro.workloads.FUNCTIONS)")
    serve.add_argument("--arrivals",
                       choices=["poisson", "bursty", "diurnal"],
                       default="poisson", help="open-loop traffic shape")
    serve.add_argument("--rate", type=float, action="append", metavar="PER_S",
                       help="offered load in requests/s (repeatable; "
                            "default 40)")
    serve.add_argument("--duration", type=float, default=10.0,
                       help="simulated seconds of traffic (default 10)")
    serve.add_argument("--strategy",
                       choices=["cold-boot", "restore", "restore-rebase",
                                "all"],
                       default="all", help="instance production strategy")
    serve.add_argument("--seed", type=int, default=1,
                       help="seed for traffic and production sampling")
    serve.add_argument("--samples", type=int, default=8,
                       help="real productions measured per strategy")
    serve.add_argument("--pool-min", type=int, default=2,
                       help="warm-pool floor (prewarmed instances)")
    serve.add_argument("--pool-max", type=int, default=16,
                       help="warm-pool ceiling (autoscale cap)")
    serve.add_argument("--scale-up-depth", type=int, default=2,
                       help="queue depth that triggers scale-up")
    serve.add_argument("--idle-ms", type=float, default=2000.0,
                       help="idle time before scale-down to the floor")
    serve.add_argument("--provisioners", type=int, default=4,
                       help="parallel instance-production slots")
    serve.add_argument("--queue-cap", type=int, default=64,
                       help="admission queue bound (beyond it: rejected)")
    serve.add_argument("--deadline-ms", type=float, default=30000.0,
                       help="queued-request timeout")
    serve.add_argument("--json", action="store_true",
                       help="emit the SLO report as canonical JSON")
    serve.add_argument("--trace-requests", action="store_true",
                       help="trace every request's causal span tree and "
                            "attach p99 tail attribution to the SLO report")
    _add_fault_flags(serve)
    _add_telemetry_flags(serve)
    _add_recorder_flags(serve, window_ms=1000.0)
    _add_alert_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    trace = sub.add_parser(
        "trace", parents=[common],
        help="replay a seeded serve flight and resolve request span "
             "trees, critical paths, and tail attribution",
    )
    trace.add_argument("--kernel", choices=sorted(PRESETS), default="aws")
    trace.add_argument("--mode", choices=[m.value for m in RandomizeMode],
                       default="kaslr")
    trace.add_argument("--function", default="api-echo",
                       help="workload function (see repro.workloads.FUNCTIONS)")
    trace.add_argument("--arrivals",
                       choices=["poisson", "bursty", "diurnal"],
                       default="poisson", help="open-loop traffic shape")
    trace.add_argument("--rate", type=float, action="append", metavar="PER_S",
                       help="offered load in requests/s (repeatable; "
                            "default 40)")
    trace.add_argument("--duration", type=float, default=10.0,
                       help="simulated seconds of traffic (default 10)")
    trace.add_argument("--strategy",
                       choices=["cold-boot", "restore", "restore-rebase",
                                "all"],
                       default="all", help="instance production strategy")
    trace.add_argument("--seed", type=int, default=1,
                       help="seed for traffic and production sampling")
    trace.add_argument("--samples", type=int, default=8,
                       help="real productions measured per strategy")
    trace.add_argument("--pool-min", type=int, default=2,
                       help="warm-pool floor (prewarmed instances)")
    trace.add_argument("--pool-max", type=int, default=16,
                       help="warm-pool ceiling (autoscale cap)")
    trace.add_argument("--scale-up-depth", type=int, default=2,
                       help="queue depth that triggers scale-up")
    trace.add_argument("--idle-ms", type=float, default=2000.0,
                       help="idle time before scale-down to the floor")
    trace.add_argument("--provisioners", type=int, default=4,
                       help="parallel instance-production slots")
    trace.add_argument("--queue-cap", type=int, default=64,
                       help="admission queue bound (beyond it: rejected)")
    trace.add_argument("--deadline-ms", type=float, default=30000.0,
                       help="queued-request timeout")
    trace.add_argument("--trace-id", default=None, metavar="ID",
                       help="resolve one trace id (e.g. an alert exemplar) "
                            "and print its span tree")
    trace.add_argument("--top", type=int, default=5,
                       help="slowest requests shown per cell (default 5)")
    trace.add_argument("--json", action="store_true",
                       help="emit the trace document as canonical JSON")
    _add_fault_flags(trace)
    trace.set_defaults(func=_cmd_trace)

    watch = sub.add_parser(
        "watch", parents=[common],
        help="flight recorder for one serve cell: per-window counters, "
             "alert transitions, and the live KASLR entropy audit",
    )
    watch.add_argument("--kernel", choices=sorted(PRESETS), default="aws")
    watch.add_argument("--mode", choices=[m.value for m in RandomizeMode],
                       default="kaslr")
    watch.add_argument("--function", default="api-echo",
                       help="workload function (see repro.workloads.FUNCTIONS)")
    watch.add_argument("--arrivals",
                       choices=["poisson", "bursty", "diurnal"],
                       default="poisson", help="open-loop traffic shape")
    watch.add_argument("--rate", type=float, default=40.0, metavar="PER_S",
                       help="offered load in requests/s (default 40)")
    watch.add_argument("--duration", type=float, default=10.0,
                       help="simulated seconds of traffic (default 10)")
    watch.add_argument("--strategy",
                       choices=["cold-boot", "restore", "restore-rebase"],
                       default="restore",
                       help="instance production strategy (default restore)")
    watch.add_argument("--seed", type=int, default=1,
                       help="seed for traffic and production sampling")
    watch.add_argument("--samples", type=int, default=8,
                       help="real productions measured per strategy")
    watch.add_argument("--pool-min", type=int, default=2,
                       help="warm-pool floor (prewarmed instances)")
    watch.add_argument("--pool-max", type=int, default=16,
                       help="warm-pool ceiling (autoscale cap)")
    watch.add_argument("--scale-up-depth", type=int, default=2,
                       help="queue depth that triggers scale-up")
    watch.add_argument("--idle-ms", type=float, default=2000.0,
                       help="idle time before scale-down to the floor")
    watch.add_argument("--provisioners", type=int, default=4,
                       help="parallel instance-production slots")
    watch.add_argument("--queue-cap", type=int, default=64,
                       help="admission queue bound (beyond it: rejected)")
    watch.add_argument("--deadline-ms", type=float, default=30000.0,
                       help="queued-request timeout")
    watch.add_argument("--window-ms", type=float, default=1000.0,
                       help="flight-recorder window width (default 1000)")
    watch.add_argument("--audit", action="store_true",
                       help="run the KASLR entropy auditor alongside")
    watch.add_argument("--json", action="store_true",
                       help="emit the flight-recorder document as JSON")
    _add_fault_flags(watch)
    _add_alert_flags(watch)
    watch.set_defaults(func=_cmd_watch)

    faults = sub.add_parser(
        "faults",
        help="list injectable fault kinds and targetable stage names",
    )
    faults.add_argument("--json", action="store_true",
                        help="emit the listing as JSON")
    faults.set_defaults(func=_cmd_faults)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except FaultPlanError as exc:
        print(f"bad --inject-fault spec: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
